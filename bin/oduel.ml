(* oduel — an interactive DUEL session against a simulated debuggee.

   Two modes:
   - scenario mode (default): pick a prebuilt debuggee and explore it with
     DUEL expressions, emulating the paper's `gdb> duel <expr>` sessions;
   - program mode (--program file.c): load a mini-C program, set
     breakpoints/watchpoints/assertions with DUEL conditions, run
     functions, and interrogate the paused program — the paper's
     Discussion section as a working debugger.

   `help` lists commands; anything that is not a command is evaluated as
   a DUEL expression. *)

module Session = Duel_core.Session
module Env = Duel_core.Env
module Inferior = Duel_target.Inferior
module Scenarios = Duel_scenarios.Scenarios
module Interp = Duel_minic.Interp
module Debugger = Duel_debug.Debugger
module Chaos = Duel_chaos.Chaos
module Backend = Duel_backend.Backend
module Fleet = Duel_fleet.Fleet
module Fdiff = Duel_fleet.Diff

let make_inferior scenario =
  match Backend.scenario_of_name scenario with
  | Ok inf -> inf
  | Error msg ->
      Printf.eprintf "unknown scenario %s: %s\n" scenario msg;
      exit 2

let help_text =
  {|Commands:
  duel <expr>            evaluate a DUEL expression (the `duel` prefix is optional)
  set symbolic on|off    compute symbolic values (default on)
  set cycles on|off      cycle detection for --> (default off)
  set engine vm|ir|ast   evaluation engine: bytecode VM, lowered-IR walker
                         (default; alias seq, plus sm for the state machine),
                         or the unlowered ablation
  set lower on|off       lower names to cached resolution slots (default on)
  set prefetch on|off    speculative read-ahead into the data cache (default on)
  set compress <n>       -->a[[n]] compression threshold (default 4)
  set limit <n>          cap displayed values (0 = unlimited)
  info scenario          describe the loaded debuggee
  info backend           the resolved --target spec tree, caps, health
  info cache             target-memory data cache counters (see --no-cache)
  info prefetch          speculative-prefetch counters (see --no-prefetch)
  info lower             name-resolution cache counters (hits/misses/stale)
  info vm                bytecode-VM counters (dispatch/superinsns/frames)
  info chaos             fault-injection and retry counters (see --chaos)
  help                   this text
  quit                   exit
With --program file.c also:
  run <func> [ints...]   run a mini-C function under the debugger
  break <func>[:line] [if <duel-cond>]
  watch <duel-expr>      stop when the expression's values change
  assert <duel-expr>     stop when any produced value is zero
  delete <id>            remove a breakpoint/watchpoint/assertion
  funcs                  list program functions
At a stop prompt: any DUEL expression, plus `continue` and `abort`.
Examples from the paper:
  x[1..4,8,12..50] >? 5 <? 10
  (hash[..1024] !=? 0)->scope >? 5
  hash[0]-->next->scope
  L-->next#i->value ==? L-->next#j->value => if (i < j) L-->next[[i,j]]->value|}

let scenario_info scenario =
  match scenario with
  | "all" ->
      "Kitchen-sink debuggee: hash (struct symbol *[1024]), L, head \
       (struct node *), root (struct tnode *), x[100], w[10], v[8], s, \
       argc/argv, paint (enum color), pk (bit-fields), dd, i0; 3 frames \
       of fib; libc printf/puts/strlen/strcmp/strchr/abs/atoi/malloc/free."
  | "symtab" -> "Just the hash symbol table."
  | "faulty" -> "cyc (cyclic list), dang (dangling tail), lone (NULL)."
  | s -> s

let on_off flags field value =
  match value with
  | "on" -> field flags true
  | "off" -> field flags false
  | _ -> print_endline "expected on or off"

let flush_target inf =
  let out = Inferior.take_output inf in
  if out <> "" then begin
    print_string out;
    if out.[String.length out - 1] <> '\n' then print_newline ()
  end

let eval_and_print session inf line =
  let expr =
    let t = String.trim line in
    if String.length t > 5 && String.sub t 0 5 = "duel " then
      String.sub t 5 (String.length t - 5)
    else t
  in
  List.iter print_endline (Session.exec session expr);
  flush_target inf

(* --- program mode: breakpoint commands ---------------------------------- *)

let parse_break_spec rest =
  (* <func>[:line] [if <cond>] *)
  let find_if s =
    let n = String.length s in
    let rec go i =
      if i + 4 > n then None
      else if String.sub s i 4 = " if " then Some i
      else go (i + 1)
    in
    go 0
  in
  let cond, spec =
    match find_if rest with
    | Some i ->
        ( Some (String.trim (String.sub rest (i + 4) (String.length rest - i - 4))),
          String.trim (String.sub rest 0 i) )
    | None -> (None, String.trim rest)
  in
  match String.split_on_char ':' spec with
  | [ func ] -> (func, None, cond)
  | [ func; line ] -> (func, int_of_string_opt line, cond)
  | _ -> (spec, None, cond)

let stop_prompt dbg reason =
  Printf.printf "stopped: %s\n" (Debugger.describe_stop reason);
  let rec loop () =
    print_string "(stopped) duel> ";
    flush stdout;
    match input_line stdin with
    | "continue" | "c" -> Debugger.Continue
    | "abort" | "a" -> Debugger.Abort
    | "" -> loop ()
    | line ->
        List.iter print_endline (Debugger.query dbg line);
        loop ()
    | exception End_of_file -> Debugger.Abort
  in
  loop ()

let handle_program_command dbg line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | "run" :: func :: args ->
      let args = List.filter_map int_of_string_opt args in
      (match Debugger.run_int dbg func args with
      | Ok v -> Printf.printf "%s returned %Ld\n" func v
      | Error msg -> Printf.printf "stopped: %s\n" msg);
      true
  | "break" :: rest ->
      let func, line, cond = parse_break_spec (String.concat " " rest) in
      let id = Debugger.break_at dbg ?condition:cond ?line func in
      Printf.printf "breakpoint %d at %s%s%s\n" id func
        (match line with Some l -> Printf.sprintf ":%d" l | None -> "")
        (match cond with Some c -> " if " ^ c | None -> "");
      true
  | "watch" :: rest ->
      let expr = String.concat " " rest in
      Printf.printf "watchpoint %d on %s\n" (Debugger.watch dbg expr) expr;
      true
  | "assert" :: rest ->
      let expr = String.concat " " rest in
      Printf.printf "assertion %d on %s\n" (Debugger.add_assertion dbg expr) expr;
      true
  | [ "delete"; id ] ->
      (match int_of_string_opt id with
      | Some id -> Debugger.delete dbg id
      | None -> print_endline "expected a numeric id");
      true
  | [ "funcs" ] ->
      List.iter print_endline
        (List.sort compare (Interp.functions (Debugger.interp dbg)));
      true
  | _ -> false

let handle_command session inf scenario program built line =
  let flags = session.Session.env.Env.flags in
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] -> ()
  | [ "help" ] -> print_endline help_text
  | [ "info"; "scenario" ] -> print_endline (scenario_info scenario)
  | [ "info"; "backend" ] -> (
      match built with
      | Some b -> List.iter print_endline (Backend.describe b)
      | None -> print_endline "backend: debugger-owned (program mode)")
  | [ "info"; "cache" ] ->
      List.iter print_endline (Session.cache_stats session)
  | [ "info"; "prefetch" ] ->
      List.iter print_endline (Session.prefetch_stats session)
  | [ "info"; "lower" ] ->
      List.iter print_endline (Session.lower_stats session)
  | [ "info"; "vm" ] -> List.iter print_endline (Session.vm_stats session)
  | [ "info"; "chaos" ] -> (
      match built with
      | Some b when b.Backend.b_rigs <> [] ->
          List.iter
            (fun (label, r) ->
              Printf.printf "%s:\n" label;
              List.iter print_endline (Chaos.rig_report r))
            b.Backend.b_rigs
      | _ ->
          print_endline
            "chaos: off (enable with --chaos or a +chaos(...) spec)")
  | [ "set"; "symbolic"; v ] -> on_off flags (fun f b -> f.Env.symbolic <- b) v
  | [ "set"; "cycles"; v ] -> on_off flags (fun f b -> f.Env.cycle_detect <- b) v
  | [ "set"; "engine"; "seq" ] -> session.Session.engine <- Session.Seq_engine
  | [ "set"; "engine"; "sm" ] -> session.Session.engine <- Session.Sm_engine
  | [ "set"; "engine"; "vm" ] -> session.Session.engine <- Session.Vm_engine
  | [ "set"; "engine"; "ir" ] ->
      (* lowered IR on the reference walker — the VM's comparison point *)
      session.Session.engine <- Session.Seq_engine;
      session.Session.lower <- true
  | [ "set"; "engine"; "ast" ] ->
      (* the unlowered ablation: same walker, every slot pinned dynamic *)
      session.Session.engine <- Session.Seq_engine;
      session.Session.lower <- false
  | [ "set"; "lower"; "on" ] -> session.Session.lower <- true
  | [ "set"; "lower"; "off" ] -> session.Session.lower <- false
  | [ "set"; "prefetch"; (("on" | "off") as v) ] ->
      if not (Session.set_prefetch session (v = "on")) then
        print_endline "prefetch: no data cache to speculate into"
  | [ "set"; "prefetch"; _ ] -> print_endline "expected on or off"
  | [ "set"; "compress"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 2 -> flags.Env.compress <- n
      | _ -> print_endline "expected an integer >= 2")
  | [ "set"; "limit"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> session.Session.max_values <- n
      | _ -> print_endline "expected a non-negative integer")
  | _ -> (
      match program with
      | Some dbg when handle_program_command dbg line -> flush_target inf
      | _ -> eval_and_print session inf line)

let repl session inf scenario program built =
  Printf.printf
    "oduel — DUEL on a simulated debuggee (%s). Type help for help.\n"
    (match program with
    | Some _ -> "mini-C program loaded"
    | None -> "target: " ^ scenario);
  let rec loop () =
    print_string "duel> ";
    flush stdout;
    match input_line stdin with
    | "quit" | "exit" -> ()
    | line ->
        (try handle_command session inf scenario program built line
         with e -> Printf.printf "error: %s\n" (Printexc.to_string e));
        loop ()
    | exception End_of_file -> ()
  in
  loop ()

(* "--chaos seed=N,profile=P" (either part optional, a bare word is a
   profile) — kept as a deprecated alias that rewrites into a
   +chaos(...) decorator on the synthesized --target spec. *)
let parse_chaos spec =
  let seed = ref 0 and profile = ref "mild" in
  List.iter
    (fun part ->
      let part = String.trim part in
      match String.index_opt part '=' with
      | None -> if part <> "" then profile := part
      | Some i -> (
          let k = String.sub part 0 i
          and v = String.sub part (i + 1) (String.length part - i - 1) in
          match (k, int_of_string_opt v) with
          | "seed", Some n -> seed := n
          | "seed", None ->
              Printf.eprintf "--chaos: bad seed %s\n" v;
              exit 2
          | "profile", _ -> profile := v
          | _ ->
              Printf.eprintf "--chaos: unknown key %s (want seed=, profile=)\n" k;
              exit 2))
    (String.split_on_char ',' spec);
  (match Chaos.profile_of_string !profile with
  | Ok _ -> ()
  | Error msg ->
      Printf.eprintf "--chaos: %s\n" msg;
      exit 2);
  (!seed, !profile)

(* The legacy flags, rewritten into a backend spec.  --rsp --chaos used
   to get the byte mangler on the loopback wire for free; the rewritten
   spec keeps that wiring explicit. *)
let spec_of_legacy scenario use_rsp no_cache no_prefetch chaos =
  let base = (if use_rsp then "rsp:" else "direct:") ^ scenario in
  let mangle, chaos_deco =
    match chaos with
    | None -> ("", "")
    | Some spec ->
        let seed, profile = parse_chaos spec in
        ( (if use_rsp then
             Printf.sprintf "+mangle(seed=%d,profile=corrupt,rate=0.01)" seed
           else ""),
          Printf.sprintf "+chaos(seed=%d,profile=%s)" seed profile )
  in
  base ^ mangle ^ chaos_deco
  ^ (if no_cache then "" else "+cache")
  ^ if no_cache || no_prefetch then "" else "+prefetch"

let build_target ?make_inf spec_str =
  match Backend.of_string ?make_inf spec_str with
  | Ok built -> built
  | Error msg ->
      Printf.eprintf "oduel: bad target %s: %s\n" spec_str msg;
      exit 2

(* --engine names: vm (bytecode), ir (lowered walker; seq is the legacy
   alias), sm (state machine), ast (unlowered walker — the ablation,
   which also pins lowering off). *)
let engine_of_string s =
  match s with
  | "sm" -> (Session.Sm_engine, None)
  | "vm" -> (Session.Vm_engine, None)
  | "ast" -> (Session.Seq_engine, Some false)
  | _ -> (Session.Seq_engine, None)

let run target scenario engine use_rsp no_cache no_prefetch chaos program_file
    exprs =
  let engine, lower_override = engine_of_string engine in
  let program_src =
    Option.map
      (fun path ->
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let src = really_input_string ic n in
        close_in ic;
        src)
      program_file
  in
  let spec_str =
    match target with
    | Some t -> t
    | None -> spec_of_legacy scenario use_rsp no_cache no_prefetch chaos
  in
  let inf, program, session, built =
    match program_src with
    | Some src ->
        if target <> None || chaos <> None then
          prerr_endline "oduel: --target/--chaos are ignored in program mode";
        let inf = Inferior.create () in
        Duel_target.Stdfuncs.register_all inf;
        let interp = Interp.load inf src in
        let dbg = Debugger.create interp in
        Debugger.on_stop dbg stop_prompt;
        if use_rsp then begin
          (* the program's own inferior, served through the loopback *)
          let spec =
            "rsp:all"
            ^ (if no_cache then "" else "+cache")
            ^ if no_cache || no_prefetch then "" else "+prefetch"
          in
          let built = build_target ~make_inf:(fun _ -> inf) spec in
          (inf, Some dbg, Session.create ~engine built.Backend.b_dbg, Some built)
        end
        else begin
          let s = Debugger.session dbg in
          s.Session.engine <- engine;
          (inf, Some dbg, s, None)
        end
    | None ->
        let built = build_target spec_str in
        ( built.Backend.b_inf,
          None,
          Session.create ~engine built.Backend.b_dbg,
          Some built )
  in
  Option.iter (fun b -> session.Session.lower <- b) lower_override;
  let scenario_display = if program = None then spec_str else scenario in
  (match exprs with
  | [] -> repl session inf scenario_display program built
  | exprs ->
      List.iter
        (fun e ->
          Printf.printf "duel> %s\n" e;
          (try handle_command session inf scenario_display program built e
           with ex -> Printf.printf "error: %s\n" (Printexc.to_string ex)))
        exprs);
  Option.iter (fun b -> b.Backend.b_close ()) built

(* --- serve: the network query service ------------------------------------ *)

module Serve_server = Duel_serve.Server
module Serve_sharded = Duel_serve.Sharded
module Serve_client = Duel_serve.Client

(* "unix:PATH" | "HOST:PORT" | "PORT", for the listening side. *)
let parse_listen addr =
  if String.length addr > 5 && String.sub addr 0 5 = "unix:" then
    `Unix (String.sub addr 5 (String.length addr - 5))
  else
    let host, port =
      match String.rindex_opt addr ':' with
      | Some i ->
          ( String.sub addr 0 i,
            String.sub addr (i + 1) (String.length addr - i - 1) )
      | None -> ("127.0.0.1", addr)
    in
    let host = if host = "" || host = "localhost" then "127.0.0.1" else host in
    match int_of_string_opt port with
    | Some p -> `Tcp (host, p)
    | None ->
        Printf.eprintf "bad listen address %s (want unix:PATH or HOST:PORT)\n"
          addr;
        exit 2

let serve scenario listen idle_timeout max_conns shards =
  if shards < 1 then begin
    Printf.eprintf "--shards must be >= 1 (got %d)\n" shards;
    exit 2
  end;
  (* the positional accepts either one scenario name or a whole fleet:
     fleet(good=deep_list:40,bad=deep_list_buggy:40,...) *)
  let fleet =
    if Fleet.is_fleet_spec scenario then (
      match Fleet.of_string scenario with
      | Ok f -> Some f
      | Error msg ->
          Printf.eprintf "oduel serve: %s\n" msg;
          exit 2)
    else None
  in
  let inf =
    match fleet with
    | Some f -> (List.hd (Fleet.targets f)).Fleet.inf
    | None -> make_inferior scenario
  in
  let config =
    { Serve_server.default_config with idle_timeout; max_conns }
  in
  let srv = Serve_sharded.create ~config ?fleet ~shards inf in
  let what =
    match fleet with
    | Some f ->
        Printf.sprintf "fleet %s (%d targets)" (Fleet.describe f)
          (Fleet.size f)
    | None -> "scenario " ^ scenario
  in
  (match parse_listen listen with
  | `Unix path ->
      Serve_sharded.listen_unix srv path;
      Printf.printf "oduel serving %s on unix:%s (%d shard%s)\n%!" what path
        shards
        (if shards = 1 then "" else "s")
  | `Tcp (host, port) ->
      let port = Serve_sharded.listen_tcp srv ~host ~port in
      Printf.printf "oduel serving %s on %s:%d (%d shard%s)\n%!" what host port
        shards
        (if shards = 1 then "" else "s"));
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle (fun _ -> Serve_sharded.shutdown srv));
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Serve_sharded.run srv;
  print_endline "oduel server: shut down";
  List.iter print_endline (Serve_sharded.stats_to_lines srv)

(* --- connect: a thin client over the wire -------------------------------- *)

let connect_help =
  {|Commands:
  <expr>                 evaluate locally over the network interface
  remote <expr>          ship the whole query to the server (qDuelEval)
  all [ids] <expr>       fan the query across fleet targets (qDuelEvalAll);
                         ids comma-separated, or * (default) for every target
  use <id>               bind this connection to fleet target <id>
                         (plain <expr> keeps the local twin's symbols;
                         use remote/all to query the bound target)
  info targets           the server's fleet roster (qDuelTargets)
  info server            the server's counters (qDuelStats)
  info cache             local data-cache counters
  info prefetch          local speculative-prefetch counters
  set prefetch on|off    toggle local speculative read-ahead
  help                   this text
  quit                   exit|}

let print_server_stats cl =
  List.iter
    (fun (k, v) -> Printf.printf "%-12s %d\n" k v)
    (Serve_client.server_stats cl)

(* `all [ids] <expr>`: fan out across fleet targets and print each
   leg's lines under its target id. *)
let fan_out cl rest =
  (* a leading "*", comma-joined id list, or single known target id
     selects the targets; anything else is already the expression
     (= all targets) *)
  let looks_like_ids w =
    w = "*"
    || (String.contains w ','
       && String.for_all
            (fun c ->
              c = ','
              || (c >= 'a' && c <= 'z')
              || (c >= 'A' && c <= 'Z')
              || (c >= '0' && c <= '9')
              || c = '_' || c = '-' || c = '.')
            w)
    || List.mem_assoc w (Serve_client.targets cl)
  in
  let ids, expr =
    match rest with
    | first :: more when more <> [] && looks_like_ids first ->
        ((if first = "*" then [] else String.split_on_char ',' first), more)
    | _ -> ([], rest)
  in
  List.iter
    (fun (id, result) ->
      match result with
      | Ok lines ->
          Printf.printf "%s:\n" id;
          List.iter (fun l -> print_endline ("  " ^ l)) lines
      | Error msg -> Printf.printf "%s: failed: %s\n" id msg)
    (Serve_client.eval_all cl ids (String.concat " " expr))

let connect_command session cl line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] -> ()
  | [ "help" ] -> print_endline connect_help
  | [ "info"; "server" ] -> print_server_stats cl
  | [ "info"; "targets" ] -> (
      match Serve_client.targets cl with
      | [] -> print_endline "no fleet (single-target server)"
      | roster ->
          List.iter
            (fun (id, spec) -> Printf.printf "%-12s %s\n" id spec)
            roster)
  | [ "info"; "cache" ] ->
      List.iter print_endline (Session.cache_stats session)
  | [ "info"; "prefetch" ] ->
      List.iter print_endline (Session.prefetch_stats session)
  | [ "set"; "prefetch"; (("on" | "off") as v) ] ->
      if not (Session.set_prefetch session (v = "on")) then
        print_endline "prefetch: no data cache to speculate into"
  | [ "set"; "prefetch"; _ ] -> print_endline "expected on or off"
  | [ "use"; id ] ->
      Serve_client.use_target cl id;
      Printf.printf "bound to target %s\n" id
  | "all" :: rest when rest <> [] -> fan_out cl rest
  | "remote" :: rest ->
      List.iter print_endline (Serve_client.eval cl (String.concat " " rest))
  | _ -> List.iter print_endline (Session.exec session (String.trim line))

let connect addr scenario engine no_cache no_prefetch exprs =
  (* The gdb model: debug info (symbols, types, frame layouts) comes from
     a locally built twin of the served scenario — the builders are
     deterministic, so addresses match — while live memory, allocation
     and calls go over the wire. *)
  let local = make_inferior scenario in
  let di = Duel_rsp.Client.debug_info_of_inferior local in
  let cl =
    try Serve_client.connect addr
    with Serve_client.Error f ->
      Printf.eprintf "cannot connect to %s: %s\n" addr
        (Serve_client.failure_message f);
      exit 1
  in
  let dbgi =
    Serve_client.dbgi ~cache:(not no_cache)
      ~prefetch:(not (no_cache || no_prefetch))
      cl di
  in
  let engine, lower_override = engine_of_string engine in
  let session = Session.create ~engine dbgi in
  Option.iter (fun b -> session.Session.lower <- b) lower_override;
  let eval_line line =
    try connect_command session cl line
    with e -> Printf.printf "error: %s\n" (Printexc.to_string e)
  in
  (match exprs with
  | [] ->
      Printf.printf
        "oduel — connected to %s (scenario %s for symbols). Type help for \
         help.\n"
        addr scenario;
      let rec loop () =
        print_string "duel> ";
        flush stdout;
        match input_line stdin with
        | "quit" | "exit" -> ()
        | line ->
            eval_line line;
            loop ()
        | exception End_of_file -> ()
      in
      loop ()
  | exprs ->
      List.iter
        (fun e ->
          Printf.printf "duel> %s\n" e;
          eval_line e)
        exprs);
  Serve_client.close cl

(* --- diff: relative debugging across two fleet targets ------------------- *)

(* Evaluate one expression on two targets of a served fleet and report
   the first divergence symbolically.  Exit status: 0 identical, 1
   diverged (the grep convention), 2 error. *)
let diff addr id_a id_b expr =
  let cl =
    try Serve_client.connect addr
    with Serve_client.Error f ->
      Printf.eprintf "oduel diff: cannot connect to %s: %s\n" addr
        (Serve_client.failure_message f);
      exit 2
  in
  let results =
    try Serve_client.eval_all cl [ id_a; id_b ] expr
    with Serve_client.Error f ->
      Printf.eprintf "oduel diff: %s\n" (Serve_client.failure_message f);
      exit 2
  in
  Serve_client.close cl;
  let leg id =
    match List.assoc_opt id results with
    | Some (Ok lines) -> lines
    | Some (Error msg) ->
        Printf.eprintf "oduel diff: target %s failed: %s\n" id msg;
        exit 2
    | None ->
        Printf.eprintf "oduel diff: no reply for target %s\n" id;
        exit 2
  in
  let outcome = Fdiff.diff (leg id_a) (leg id_b) in
  List.iter print_endline (Fdiff.report ~id_a ~id_b outcome);
  exit (match outcome with Fdiff.Equal _ -> 0 | _ -> 1)

open Cmdliner

let target_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "target" ] ~docv:"SPEC"
        ~doc:
          "Backend spec — the one addressing scheme for every stack: \
           $(b,direct:all+cache), \
           $(b,rsp:big:400+chaos(seed=3,profile=mild)+cache), \
           $(b,dispatch(tcp://a:7777,tcp://b:7777;hedge=p90)).  Overrides \
           the legacy --scenario/--rsp/--no-cache/--chaos flags, which \
           are kept as aliases that rewrite into a spec.  Inspect the \
           result with `info backend`.")

let scenario_arg =
  Arg.(
    value & opt string "all"
    & info [ "scenario" ] ~doc:"Debuggee: all, symtab, faulty, big:<n>.")

let engine_arg =
  Arg.(
    value & opt string "seq"
    & info [ "engine" ] ~doc:"Evaluation engine: vm, ir (alias seq), sm or ast.")

let rsp_arg =
  Arg.(
    value & flag
    & info [ "rsp" ]
        ~doc:
          "Talk to the debuggee through the in-process GDB \
           remote-serial-protocol stub instead of directly.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the target-memory data cache; every DUEL memory access \
           becomes a backend round-trip (useful for measuring the cache, \
           see `info cache`).")

let no_prefetch_arg =
  Arg.(
    value & flag
    & info [ "no-prefetch" ]
        ~doc:
          "Disable speculative read-ahead into the data cache; cold \
           traversals pay one round-trip per line again (useful for \
           measuring the prefetcher, see `info prefetch`).")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection: $(docv) is seed=N,profile=P (a \
           bare word is a profile: off, mild, nasty).  Wraps the backend \
           in the chaos proxy plus the retry layer — and, with --rsp, the \
           byte-stream mangler on the loopback wire.  Inspect with `info \
           chaos`.")

let program_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "program" ] ~doc:"Load a mini-C $(docv) and debug it." ~docv:"FILE")

let exprs_arg =
  Arg.(
    value & opt_all string []
    & info [ "e"; "eval" ] ~doc:"Evaluate $(docv) and exit (repeatable).")

let repl_term =
  Term.(
    const run $ target_arg $ scenario_arg $ engine_arg $ rsp_arg
    $ no_cache_arg $ no_prefetch_arg $ chaos_arg $ program_arg $ exprs_arg)

let serve_cmd =
  let scenario_pos =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"SCENARIO"
          ~doc:
            "Debuggee: all, symtab, faulty, big:<n>, deep_list:<n>, \
             deep_tree:<n> and the _buggy twins — or a whole fleet \
             $(b,fleet(id=scenario,id=dead:scenario,...)) to host several \
             named targets at once.")
  in
  let listen_arg =
    Arg.(
      value
      & opt string "127.0.0.1:0"
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Listen address: unix:PATH, HOST:PORT, or PORT (port 0 picks a \
             free port, printed on startup).")
  in
  let idle_arg =
    Arg.(
      value & opt float 30.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Reap connections silent this long (<= 0 disables).")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ] ~docv:"N" ~doc:"Concurrent connection cap.")
  in
  let shards_arg =
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Event-loop shards, one OCaml domain each (default: the \
             machine's recommended domain count).  TCP shards share the \
             port via SO_REUSEPORT; 1 preserves the classic \
             single-threaded server exactly.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a scenario to network clients over RSP (a select loop per \
          shard, many connections; SIGINT shuts down gracefully).")
    Term.(
      const serve $ scenario_pos $ listen_arg $ idle_arg $ max_conns_arg
      $ shards_arg)

let connect_cmd =
  let addr_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR" ~doc:"Server address: unix:PATH or HOST:PORT.")
  in
  let scenario_opt =
    Arg.(
      value & opt string "all"
      & info [ "scenario" ]
          ~doc:
            "Scenario the server is running — built locally for symbols and \
             types (the scenario builders are deterministic, so addresses \
             match the served target).")
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:
         "Connect to an oduel server: evaluate DUEL locally over the \
          network interface, or `remote <expr>` to run queries \
          server-side in one round-trip.")
    Term.(
      const connect $ addr_pos $ scenario_opt $ engine_arg $ no_cache_arg
      $ no_prefetch_arg $ exprs_arg)

let diff_cmd =
  let addr_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR" ~doc:"Server address: unix:PATH or HOST:PORT.")
  in
  let id_a_pos =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"ID_A" ~doc:"First fleet target id.")
  in
  let id_b_pos =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"ID_B" ~doc:"Second fleet target id.")
  in
  let expr_pos =
    Arg.(
      required
      & pos 3 (some string) None
      & info [] ~docv:"EXPR" ~doc:"The DUEL expression to evaluate on both.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Relative debugging: evaluate one DUEL expression on two targets \
          of a served fleet (qDuelEvalAll) and report the first divergence \
          symbolically.  Exits 0 when the streams are identical, 1 on a \
          divergence, 2 on error.")
    Term.(const diff $ addr_pos $ id_a_pos $ id_b_pos $ expr_pos)

let cmd =
  let doc =
    "DUEL, a very high-level debugging language (USENIX W'93), on a \
     simulated C debuggee"
  in
  Cmd.group ~default:repl_term (Cmd.info "oduel" ~doc)
    [ serve_cmd; connect_cmd; diff_cmd ]

let () = exit (Cmd.eval cmd)
