(* The bytecode VM engine: three-way differential battery (unlowered
   walker vs lowered walker vs VM must be bit-identical, including error
   lines and target stdout), directed frame suspension/resumption across
   [Session.exec] flush points, the per-session compile memo, and the
   superinstruction/fused-reduce counters. *)

open Support
module Session = Duel_core.Session
module Env = Duel_core.Env
module Compile = Duel_core.Compile
module Vm = Duel_core.Vm

(* One query, three engines, three fresh identical debuggees.  "ast" is
   the unlowered walker (every slot dynamic), "ir" the lowered walker,
   "vm" the bytecode engine on the same lowered IR. *)
let run_three ?(scenario = `All) ?(tune = fun _ -> ()) query =
  let run engine lower =
    let k = kit ~engine ~scenario () in
    k.session.Session.lower <- lower;
    tune k;
    let lines = exec k query in
    let out = Duel_target.Inferior.take_output k.inf in
    let depth = Env.scope_depth k.session.Session.env in
    (lines, out, depth)
  in
  ( run Session.Seq_engine false,
    run Session.Seq_engine true,
    run Session.Vm_engine true )

let agree ?scenario ?tune query =
  let (l1, o1, d1), (l2, o2, d2), (l3, o3, d3) =
    run_three ?scenario ?tune query
  in
  Alcotest.(check (list string)) "ast vs ir lines" l1 l2;
  Alcotest.(check (list string)) "ir vs vm lines" l2 l3;
  Alcotest.(check string) "ast vs ir stdout" o1 o2;
  Alcotest.(check string) "ir vs vm stdout" o2 o3;
  Alcotest.(check int) "ast scope depth restored" 0 d1;
  Alcotest.(check int) "ir scope depth restored" 0 d2;
  Alcotest.(check int) "vm scope depth restored" 0 d3

let corpus_case query =
  Support.case ("three engines agree: " ^ query) (fun () -> agree query)

(* Error parity: faults, cycles and expansion limits must come back as
   the same formatted lines from all three engines. *)
let error_corpus =
  [
    "(*lone).value";
    "dang->next->next->next->value";
    "dang-->next->value";
    "dang->(value, next->next->next->value)";
    "cyc->bogus";
    "#/(dang-->next->value)";
    "lone-->next->value";
  ]

let error_case query =
  Support.case ("faulty parity: " ^ query) (fun () ->
      agree ~scenario:`Faulty query)

let cycle_cases =
  [
    Support.case "faulty parity: expansion limit" (fun () ->
        agree ~scenario:`Faulty
          ~tune:(fun k ->
            k.session.Session.env.Env.flags.Env.expansion_limit <- 16)
          "cyc-->next->value");
    Support.case "faulty parity: cycle detection" (fun () ->
        agree ~scenario:`Faulty
          ~tune:(fun k ->
            k.session.Session.env.Env.flags.Env.cycle_detect <- true)
          "cyc-->next->value");
  ]

let prop_three_agree =
  QCheck2.Test.make ~name:"three engines agree on random expressions"
    ~count:200 Test_engines.gen_query (fun query ->
      let (l1, o1, d1), (l2, o2, d2), (l3, o3, d3) = run_three query in
      l1 = l2 && l2 = l3 && o1 = o2 && o2 = o3 && d1 = 0 && d2 = 0 && d3 = 0)

(* --- directed frame machinery tests -------------------------------------- *)

let compile_vm k query =
  Compile.compile (Session.compile k.session (Session.parse k.session query))

let fmt k v = Session.format_value k.session v

(* A suspended run is a plain value: pull a few values, run whole other
   commands through the session (each one a flush point that restores
   scope depth and flushes the write cache), then resume the run and get
   exactly the rest of the sequence. *)
let suspension_case =
  Support.case "frame suspends across exec flush points" (fun () ->
      let k = kit ~engine:Session.Vm_engine () in
      let expected = exec k "hash[0]-->next->scope" in
      let run = Vm.start k.session.Session.env (compile_vm k "hash[0]-->next->scope") in
      let got = ref [] in
      let pull () =
        match Vm.step run with
        | Some v -> got := fmt k v :: !got
        | None -> Alcotest.fail "sequence ended early"
      in
      pull ();
      (* interleave full commands, including a target store + flush *)
      Alcotest.(check (list string)) "interleaved eval" [ "x[0] = 7" ]
        (exec k "x[0] = 7; x[0]");
      pull ();
      ignore (exec k "#/(1..10)");
      pull ();
      pull ();
      Alcotest.(check bool) "exhausted" true (Vm.step run = None);
      Alcotest.(check bool) "exhaustion is sticky" true (Vm.step run = None);
      Alcotest.(check (list string)) "same values as one-shot eval" expected
        (List.rev !got))

let range_suspension_case =
  Support.case "suspended range resumes mid-stream" (fun () ->
      let k = kit ~engine:Session.Vm_engine () in
      let run = Vm.start k.session.Session.env (compile_vm k "(1..6)*10") in
      let a = Vm.step run and b = Vm.step run in
      ignore (exec k "w[0] = 3; w[0]");
      let rest = List.init 4 (fun _ -> Vm.step run) in
      let shown = List.map (function Some v -> fmt k v | None -> "<end>")
          (a :: b :: rest)
      in
      Alcotest.(check (list string)) "values"
        [ "1*10 = 10"; "2*10 = 20"; "3*10 = 30"; "4*10 = 40"; "5*10 = 50";
          "6*10 = 60" ]
        shown;
      Alcotest.(check bool) "exhausted" true (Vm.step run = None))

let memo_case =
  Support.case "session memoizes the compiled plan per IR tree" (fun () ->
      let k = kit ~engine:Session.Vm_engine () in
      let ir = Session.compile k.session (Session.parse k.session "#/(1..50)") in
      let n1 = Session.drive_ir k.session ir in
      let p1 =
        match k.session.Session.vm_plan with
        | Some (_, p) -> p
        | None -> Alcotest.fail "no plan cached"
      in
      let n2 = Session.drive_ir k.session ir in
      let p2 =
        match k.session.Session.vm_plan with
        | Some (_, p) -> p
        | None -> Alcotest.fail "no plan cached"
      in
      Alcotest.(check int) "drive count" n1 n2;
      Alcotest.(check bool) "same compiled program reused" true (p1 == p2))

let counters_case =
  Support.case "info vm counters move" (fun () ->
      let k = kit ~engine:Session.Vm_engine () in
      let vs = k.session.Session.vstats in
      ignore (exec k "#/(1..100)");
      Alcotest.(check bool) "reduce loop fully fused" true
        (vs.Vm.v_fused >= 100);
      ignore (exec k "hash[0]-->next->scope");
      Alcotest.(check bool) "chase ran as a superinstruction" true
        (vs.Vm.v_super > 0);
      Alcotest.(check bool) "frames were heap-allocated" true (vs.Vm.v_frames > 0);
      ignore (exec k "value := 5; L->value = value; L->value");
      Alcotest.(check bool) "assignment took the fallback path" true
        (vs.Vm.v_fallback > 0);
      Alcotest.(check bool) "info vm renders" true
        (List.length (Session.vm_stats k.session) = 3))

let suite =
  List.map corpus_case Test_engines.corpus
  @ List.map error_case error_corpus
  @ cycle_cases
  @ [
      QCheck_alcotest.to_alcotest prop_three_agree;
      suspension_case;
      range_suspension_case;
      memo_case;
      counters_case;
    ]
