(* Differential tests for the lowering layer: slotted (cached) resolution
   and the Dynamic-slot ablation must produce identical output — value
   sequences AND symbolic strings — on both engines, over the shared
   corpus, random expressions, and directed cache-invalidation cases
   (alias redefined mid-query, scope shadowing, external stores). *)

open Support
module Session = Duel_core.Session
module Env = Duel_core.Env
module Inferior = Duel_target.Inferior
module Interp = Duel_minic.Interp

let configs =
  [
    ("seq/lowered", Session.Seq_engine, true);
    ("seq/dynamic", Session.Seq_engine, false);
    ("sm/lowered", Session.Sm_engine, true);
    ("sm/dynamic", Session.Sm_engine, false);
  ]

let run_config engine lower query =
  let k = kit ~engine () in
  k.session.Session.lower <- lower;
  let lines = exec k query in
  let out = Inferior.take_output k.inf in
  let depth = Env.scope_depth k.session.Session.env in
  (lines, out, depth)

let corpus_case query =
  Support.case ("lowered = dynamic: " ^ query) (fun () ->
      let l0, o0, d0 = run_config Session.Seq_engine true query in
      List.iter
        (fun (name, engine, lower) ->
          let l, o, d = run_config engine lower query in
          Alcotest.(check (list string)) (name ^ " output lines") l0 l;
          Alcotest.(check string) (name ^ " target stdout") o0 o;
          Alcotest.(check int) (name ^ " scope depth restored") 0 d)
        configs;
      Alcotest.(check int) "reference scope depth restored" 0 d0)

let prop_modes_agree =
  QCheck2.Test.make ~name:"lowered = dynamic on random expressions"
    ~count:150 Test_engines.gen_query (fun query ->
      let reference = run_config Session.Seq_engine true query in
      List.for_all
        (fun (_, engine, lower) ->
          let l, o, d = run_config engine lower query in
          let l0, o0, _ = reference in
          l = l0 && o = o0 && d = 0)
        configs)

(* --- directed invalidation cases ---------------------------------------- *)

let four_way query check =
  List.iter
    (fun (name, engine, lower) ->
      let l, _, d = run_config engine lower query in
      check name l;
      Alcotest.(check int) (name ^ " scope depth restored") 0 d)
    configs

(* The alias is redefined by [:=] between the two pulls of [j + 1]: the
   slot cached under j=1 must be invalidated by the alias-generation
   bump, not reused. *)
let alias_redefined_mid_query () =
  four_way "(j := (1,5)) => j + 1" (fun name lines ->
      Alcotest.(check int) (name ^ " two values") 2 (List.length lines);
      List.iter2
        (fun suffix line ->
          let n = String.length line and sn = String.length suffix in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S ends with %S" name line suffix)
            true
            (n >= sn && String.sub line (n - sn) sn = suffix))
        [ " = 2"; " = 6" ] lines)

(* One [value] node, two with-subjects: under argv's scope it must fall
   through to the alias (and cache that); under L's member scope the
   cached alias slot is stale — the member shadows it.  Then the same in
   the other order, staling a member slot into an alias. *)
let scope_shadowing () =
  let starts_with prefix line =
    String.length line >= String.length prefix
    && String.sub line 0 (String.length prefix) = prefix
  in
  four_way "(value := 7) => (argv, L)->value" (fun name lines ->
      match lines with
      | [ a; b ] ->
          Alcotest.(check string) (name ^ " alias first") "value = 7" a;
          Alcotest.(check bool)
            (name ^ " member second: " ^ b)
            true
            (starts_with "L->value = " b)
      | _ -> Alcotest.failf "%s: expected 2 lines, got %d" name (List.length lines));
  four_way "(value := 7) => (L, argv)->value" (fun name lines ->
      match lines with
      | [ a; b ] ->
          Alcotest.(check bool)
            (name ^ " member first: " ^ a)
            true
            (starts_with "L->value = " a);
          Alcotest.(check string) (name ^ " alias second") "value = 7" b
      | _ -> Alcotest.failf "%s: expected 2 lines, got %d" name (List.length lines))

(* A member slot must rebuild from the live scope subject on every hit:
   two subjects of the same struct type reuse the slot's field layout but
   not its address. *)
let member_slot_rebuilds () =
  let k = kit () in
  let direct = exec k "L->value, L->next->value" in
  let via_with = exec k "(L, L->next)->value" in
  Alcotest.(check int) "two values" 2 (List.length via_with);
  List.iter2
    (fun d w ->
      let value_of line =
        match String.rindex_opt line '=' with
        | Some i -> String.sub line i (String.length line - i)
        | None -> line
      in
      Alcotest.(check string) "same value through the slot" (value_of d)
        (value_of w))
    direct via_with

(* Slot hit/miss accounting: one command resolving a global 100 times
   costs one miss; the ablation takes the dynamic path every time. *)
let slot_counters () =
  let k = kit () in
  ignore (exec k "(1..100) + i0");
  let ls = k.session.Session.env.Env.lstats in
  Alcotest.(check bool) "lowered: hits dominate" true (ls.Env.l_hits >= 99);
  Alcotest.(check bool) "lowered: no dynamic lookups" true (ls.Env.l_dynamic = 0);
  let k2 = kit () in
  k2.session.Session.lower <- false;
  ignore (exec k2 "(1..100) + i0");
  let ls2 = k2.session.Session.env.Env.lstats in
  Alcotest.(check bool) "dynamic: all lookups dynamic" true
    (ls2.Env.l_dynamic >= 100);
  Alcotest.(check int) "dynamic: no slot hits" 0 ls2.Env.l_hits

(* Re-evaluating compiled IR must hit the slots the first run populated
   (this is what a conditional breakpoint does on every step). *)
let compiled_ir_reuse () =
  let k = kit () in
  let s = k.session in
  let ir = Session.compile s (Session.parse s "(1..10) + i0") in
  let run () =
    List.of_seq (Seq.map (Session.format_value s) (Session.eval_ir s ir))
  in
  let first = run () in
  let hits_after_first = s.Session.env.Env.lstats.Env.l_hits in
  let second = run () in
  let hits_after_second = s.Session.env.Env.lstats.Env.l_hits in
  Alcotest.(check (list string)) "same output on reuse" first second;
  Alcotest.(check bool) "second run served from slots" true
    (hits_after_second - hits_after_first >= 10)

(* External stores: a mini-C program mutating memory bumps
   Memory.generation; the next slot check must notice (through the same
   coherence probe the data cache snoops) and re-resolve. *)
let minic_program = {|
int g;
int bump() { g = g + 1; return g; }
|}

let minic_step_invalidates () =
  let inf = Inferior.create () in
  Duel_target.Stdfuncs.register_all inf;
  let t = Interp.load inf minic_program in
  let s = Session.create (Duel_target.Backend.direct inf) in
  let ir = Session.compile s (Session.parse s "g") in
  let run () =
    List.of_seq (Seq.map (Session.format_value s) (Session.eval_ir s ir))
  in
  Alcotest.(check (list string)) "before the program runs" [ "g = 0" ] (run ());
  let stale_before = s.Session.env.Env.lstats.Env.l_stale in
  ignore (Interp.call_int t "bump" []);
  Alcotest.(check (list string)) "after one program step" [ "g = 1" ] (run ());
  Alcotest.(check bool) "the cached slot was invalidated" true
    (s.Session.env.Env.lstats.Env.l_stale > stale_before)

(* Folding never changes @-stop semantics: a source literal stops on
   equality, a folded constant (or parenthesized literal) on truth. *)
let until_stop_forms () =
  four_way "(3,2,1,0,5)@0" (fun name lines ->
      Alcotest.(check int) (name ^ " equality-stop") 3 (List.length lines));
  four_way "(3,2,1,0,5)@(0)" (fun name lines ->
      (* truth-stop: (0) is never true, all five values survive *)
      Alcotest.(check int) (name ^ " truth-stop parens") 5 (List.length lines));
  four_way "(3,2,1,0,5)@(1+1)" (fun name lines ->
      (* folded to 2 but not a source literal: truth-stop, 2 is true *)
      Alcotest.(check int) (name ^ " truth-stop folded") 0 (List.length lines))

let suite =
  List.map corpus_case Test_engines.corpus
  @ [
      QCheck_alcotest.to_alcotest prop_modes_agree;
      Support.case "alias redefined mid-query invalidates" alias_redefined_mid_query;
      Support.case "scope shadowing alias vs member" scope_shadowing;
      Support.case "member slot rebuilds per subject" member_slot_rebuilds;
      Support.case "slot hit/miss counters" slot_counters;
      Support.case "compiled IR reuse hits slots" compiled_ir_reuse;
      Support.case "mini-C step invalidates via generation" minic_step_invalidates;
      Support.case "until stop forms survive folding" until_stop_forms;
    ]
