(* The traversal prefetch planner, proven prefetch-blind: the engine
   corpus must be bit-identical with speculation on and off across all
   three engines over a packet-counting backend, the speculation ledger
   must always settle to [useful + wasted = issued], and mispredictions
   — wrong learned offsets, chases off a mapping edge, concurrent
   writes — must be harmless in every observable way except the
   counters. *)

open Support
module Session = Duel_core.Session
module Dbgi = Duel_dbgi.Dbgi
module Dcache = Duel_dbgi.Dcache
module Prefetch = Duel_dbgi.Prefetch
module Backend = Duel_backend.Backend
module Inferior = Duel_target.Inferior
module Scenarios = Duel_scenarios.Scenarios
module Memory = Duel_mem.Memory

let case = Support.case

(* ast = the unlowered walker, ir = the lowered walker, vm = the
   bytecode engine: the three engines whose [-->] paths feed the
   predictor chase hints. *)
let engines =
  [
    ("ast", Session.Seq_engine, false);
    ("ir", Session.Seq_engine, true);
    ("vm", Session.Vm_engine, true);
  ]

(* One run over a spec-built backend: output lines, target stdout,
   framed packet count, and the settled speculation ledger (the cache is
   invalidated first so every still-speculative line resolves). *)
let run_spec ~spec ~engine ~lower query =
  match Backend.of_string spec with
  | Error m -> Alcotest.fail (spec ^ ": " ^ m)
  | Ok b ->
      Fun.protect ~finally:b.Backend.b_close (fun () ->
          let s = Session.create ~engine b.Backend.b_dbg in
          s.Session.lower <- lower;
          let lines = Session.exec s query in
          let out = Inferior.take_output b.Backend.b_inf in
          let packets = !(b.Backend.b_packets) in
          Dcache.invalidate b.Backend.b_dbg;
          let ledger =
            Option.map
              (fun st ->
                ( st.Prefetch.issued,
                  st.Prefetch.useful,
                  st.Prefetch.wasted ))
              (Prefetch.stats b.Backend.b_dbg)
          in
          (lines, out, packets, ledger))

(* The blind check: same query, same engine, prefetch on vs off; lines
   and stdout bit-identical, and the prefetching arm's ledger balances.
   The baseline arm must really be blind — no predictor attached. *)
let check_blind ~base ~query =
  List.iter
    (fun (name, engine, lower) ->
      let l0, o0, _, g0 =
        run_spec ~spec:(base ^ "+cache") ~engine ~lower query
      in
      let l1, o1, _, g1 =
        run_spec ~spec:(base ^ "+cache+prefetch") ~engine ~lower query
      in
      Alcotest.(check bool) (name ^ ": baseline is blind") true (g0 = None);
      Alcotest.(check (list string)) (name ^ ": lines blind to prefetch") l0 l1;
      Alcotest.(check string) (name ^ ": stdout blind to prefetch") o0 o1;
      match g1 with
      | None -> Alcotest.fail (name ^ ": prefetch arm has no predictor")
      | Some (issued, useful, wasted) ->
          Alcotest.(check int)
            (name ^ ": useful + wasted = issued")
            issued (useful + wasted))
    engines

let corpus_case query =
  case ("prefetch-blind: " ^ query) (fun () ->
      check_blind ~base:"rsp:all" ~query)

(* Error parity through the predictor: faulting chases (dangling tails,
   NULL heads, cycles) must format identically — the demand fault keeps
   its exact attribution no matter what the walker speculated. *)
let faulty_case query =
  case ("prefetch-blind faulty: " ^ query) (fun () ->
      check_blind ~base:"rsp:faulty" ~query)

let prop_blind =
  QCheck2.Test.make
    ~name:"random expressions are prefetch-blind on all three engines"
    ~count:40 Test_engines.gen_query (fun query ->
      List.for_all
        (fun (_, engine, lower) ->
          let l0, o0, _, _ =
            run_spec ~spec:"rsp:all+cache" ~engine ~lower query
          in
          let l1, o1, _, g1 =
            run_spec ~spec:"rsp:all+cache+prefetch" ~engine ~lower query
          in
          l0 = l1 && o0 = o1
          && match g1 with
             | Some (issued, useful, wasted) -> issued = useful + wasted
             | None -> false)
        engines)

(* The planner's whole point, asserted at the packet counter: a cold
   deep traversal takes at least 3x fewer round trips with speculation
   than the plain cache, on both the list and the tree shape. *)
let fewer_packets_case =
  case "cold traversals take >= 3x fewer packets" (fun () ->
      List.iter
        (fun (spec, query) ->
          let _, _, p0, _ =
            run_spec ~spec:(spec ^ "+cache") ~engine:Session.Seq_engine
              ~lower:true query
          in
          let l1, _, p1, _ =
            run_spec
              ~spec:(spec ^ "+cache+prefetch")
              ~engine:Session.Seq_engine ~lower:true query
          in
          Alcotest.(check bool) (spec ^ ": traversal produced output") true
            (l1 <> []);
          Alcotest.(check bool)
            (Printf.sprintf "%s: %d cached packets >= 3x %d prefetched" spec
               p0 p1)
            true
            (p0 >= 3 * p1))
        [
          ("rsp:deep_list:400", "#/(deep-->next->value)");
          ("rsp:deep_tree:8", "#/(droot-->(left,right)->key)");
        ])

(* --- directed mispredictions --------------------------------------------- *)

(* A chain whose links are deliberately out of allocation order at the
   planted seed: the learned stride is wrong mid-chain, the walker
   speculates the wrong nodes, and nothing but the counters may show
   it. *)
let swapped_chain_case =
  case "swapped links mid-chain mispredict harmlessly" (fun () ->
      check_blind ~base:"rsp:deep_list_swapped:64"
        ~query:"#/(deep-->next->value)")

(* The engines always hint the true link offset of the hop they just
   validated; feed the predictor wrong ones by hand — stale history from
   a node type whose link lives elsewhere — and the walker decodes
   non-pointers, speculates garbage, swallows the faults, and demand
   reads stay exact. *)
let wrong_offset_case =
  case "wrong link-offset hints are harmless" (fun () ->
      let inf = Scenarios.all () in
      let dbg = Duel_target.Backend.direct inf in
      let head =
        match dbg.Dbgi.find_variable "head" with
        | Some { Dbgi.v_addr; _ } ->
            Int64.to_int
              (Dbgi.read_scalar dbg ~addr:v_addr ~size:8 ~signed:false)
        | None -> Alcotest.fail "head missing"
      in
      List.iter
        (fun off ->
          Prefetch.hint_chase dbg ~link_offset:off ~width:16 ~target:head)
        [ 0; 4; 12; 60; 8 ];
      (match Prefetch.stats dbg with
      | None -> Alcotest.fail "no predictor"
      | Some st -> Alcotest.(check int) "hints counted" 5 st.Prefetch.hints);
      let s = Session.create dbg in
      let got = Session.exec s "head-->next->value[[3,5]]" in
      let fresh = kit () in
      let expected = exec fresh "head-->next->value[[3,5]]" in
      Alcotest.(check (list string)) "demand traversal unaffected" expected got;
      Dcache.invalidate dbg;
      match Prefetch.stats dbg with
      | None -> Alcotest.fail "no predictor"
      | Some st ->
          Alcotest.(check int) "ledger balances"
            st.Prefetch.issued
            (st.Prefetch.useful + st.Prefetch.wasted))

(* A chase walking off the mapping edge: the walker's speculative read
   of the dangling tail faults, is swallowed and only counted; the
   demand read that follows surfaces the fault with the exact unmapped
   {addr; len} the raw backend reports. *)
let dangling_chase_case =
  case "speculative faults swallowed, demand faults exact" (fun () ->
      let inf = Scenarios.faulty () in
      let dbg = Duel_target.Backend.direct inf in
      let s = Session.create dbg in
      let got = Session.exec s "dang-->next->value" in
      let raw = Duel_target.Backend.direct ~cache:false (Scenarios.faulty ()) in
      let expected = Session.exec (Session.create raw) "dang-->next->value" in
      Alcotest.(check (list string)) "fault lines exact through prefetch"
        expected got;
      (* the dangling tail itself: demand fault attribution down to the
         byte, even though the walker already speculated at the edge *)
      let tail = 0x40000000 in
      (match dbg.Dbgi.get_bytes ~addr:tail ~len:4 with
      | _ -> Alcotest.fail "wild read must fault"
      | exception Dbgi.Target_fault { addr; len } ->
          Alcotest.(check int) "fault addr" tail addr;
          Alcotest.(check int) "fault len" 4 len);
      Dcache.invalidate dbg;
      match Prefetch.stats dbg with
      | None -> Alcotest.fail "no predictor"
      | Some st ->
          Alcotest.(check int) "ledger balances"
            st.Prefetch.issued
            (st.Prefetch.useful + st.Prefetch.wasted))

(* A write invalidating speculated lines: the generation probe drops the
   whole cache, still-speculative lines resolve wasted, and the next
   demand read refetches fresh bytes. *)
let coherence_case =
  case "write drops speculated lines as wasted" (fun () ->
      let inf = Scenarios.all () in
      let dbg = Duel_target.Backend.direct inf in
      let x =
        match dbg.Dbgi.find_variable "x" with
        | Some { Dbgi.v_addr; _ } -> v_addr
        | None -> Alcotest.fail "x missing"
      in
      ignore (Dbgi.read_scalar dbg ~addr:x ~size:4 ~signed:true);
      let n = Dcache.spec_fetch dbg ~addr:(x + 64) ~len:256 in
      Alcotest.(check bool) "lines speculated" true (n > 0);
      let st =
        match Prefetch.stats dbg with
        | Some st -> st
        | None -> Alcotest.fail "no predictor"
      in
      let wasted0 = st.Prefetch.wasted in
      (* a store behind the interface's back: the mini-C interpreter,
         the target itself — anything that bumps the write generation *)
      Memory.write (Inferior.mem inf) ~addr:(x + 80) (Bytes.make 4 '\x2a');
      Alcotest.(check int64) "demand read sees the new bytes" 0x2a2a2a2aL
        (Dbgi.read_scalar dbg ~addr:(x + 80) ~size:4 ~signed:false);
      Alcotest.(check bool)
        (Printf.sprintf "speculated lines resolved wasted (%d -> %d)" wasted0
           st.Prefetch.wasted)
        true
        (st.Prefetch.wasted >= wasted0 + n);
      Dcache.invalidate dbg;
      Alcotest.(check int) "ledger balances" st.Prefetch.issued
        (st.Prefetch.useful + st.Prefetch.wasted))

(* Speculative inserts never replace resident lines: a buffered write
   lives in a cached line, a span speculated over it must not clobber
   the pending bytes. *)
let pending_write_case =
  case "speculation never clobbers buffered writes" (fun () ->
      let inf = Scenarios.all () in
      let dbg = Duel_target.Backend.direct ~prefetch:false inf in
      let x =
        match dbg.Dbgi.find_variable "x" with
        | Some { Dbgi.v_addr; _ } -> v_addr
        | None -> Alcotest.fail "x missing"
      in
      Dbgi.write_scalar dbg ~addr:x ~size:4 77L;
      ignore (Dcache.spec_fetch dbg ~addr:(x - 64) ~len:256);
      Alcotest.(check int64) "buffered write survives speculation" 77L
        (Dbgi.read_scalar dbg ~addr:x ~size:4 ~signed:true))

(* The mapping-edge fallback for batched inserts: a span straddling an
   unmapped hole inserts the mapped prefix (counted, usable) and
   swallows nothing it shouldn't — demand past the edge still faults
   with exact attribution. *)
let mapping_edge_case =
  case "batched insert straddling a hole keeps the mapped prefix"
    (fun () ->
      let inf = Inferior.create () in
      let mem = Inferior.mem inf in
      let page = Memory.page_size in
      let base = 64 * page in
      Memory.map mem ~addr:base ~size:page;
      let dbg = Duel_target.Backend.direct ~prefetch:false inf in
      let start = base + page - 256 in
      let n = Dcache.spec_fetch dbg ~addr:start ~len:512 in
      Alcotest.(check int) "exactly the mapped prefix inserted" 4 n;
      (* the prefix serves demand without another backend read *)
      let rt0 =
        match Dcache.stats dbg with
        | Some st -> Dcache.round_trips st
        | None -> Alcotest.fail "no cache"
      in
      ignore (dbg.Dbgi.get_bytes ~addr:start ~len:256);
      let rt1 =
        match Dcache.stats dbg with
        | Some st -> Dcache.round_trips st
        | None -> Alcotest.fail "no cache"
      in
      Alcotest.(check int) "prefix served from speculated lines" rt0 rt1;
      (* a fully-unmapped span inserts nothing and raises to the caller
         (the predictor is who swallows it) *)
      (match Dcache.spec_fetch dbg ~addr:(base + page) ~len:128 with
      | _ -> Alcotest.fail "fully unmapped span must fault"
      | exception Dbgi.Target_fault _ -> ());
      match dbg.Dbgi.get_bytes ~addr:(base + page - 2) ~len:4 with
      | _ -> Alcotest.fail "demand straddling the edge must fault"
      | exception Dbgi.Target_fault { addr = _; len } ->
          Alcotest.(check int) "demand fault length exact" 4 len)

(* [set prefetch off] stops new speculation but the ledger keeps
   settling: lines speculated before the switch still resolve. *)
let toggle_case =
  case "disabling keeps the ledger settling" (fun () ->
      let inf = Scenarios.all () in
      let dbg = Duel_target.Backend.direct inf in
      let s = Session.create dbg in
      ignore (Session.exec s "head-->next->value");
      Alcotest.(check bool) "toggle accepted" true (Session.set_prefetch s false);
      let st =
        match Prefetch.stats dbg with
        | Some st -> st
        | None -> Alcotest.fail "no predictor"
      in
      let issued = st.Prefetch.issued in
      ignore (Session.exec s "hash[0]-->next->scope");
      Alcotest.(check int) "no new speculation while off" issued
        st.Prefetch.issued;
      Dcache.invalidate dbg;
      Alcotest.(check int) "ledger balances across the toggle"
        st.Prefetch.issued
        (st.Prefetch.useful + st.Prefetch.wasted);
      Alcotest.(check bool) "re-enable" true (Session.set_prefetch s true);
      Alcotest.(check bool) "stats render" true
        (List.length (Session.prefetch_stats s) >= 3))

let suite =
  List.map corpus_case Test_engines.corpus
  @ List.map faulty_case
      [
        "dang-->next->value";
        "lone-->next->value";
        "#/(dang-->next->value)";
        "cyc->bogus";
      ]
  @ [
      QCheck_alcotest.to_alcotest prop_blind;
      fewer_packets_case;
      swapped_chain_case;
      wrong_offset_case;
      dangling_chase_case;
      coherence_case;
      pending_write_case;
      mapping_edge_case;
      toggle_case;
    ]
