(* End-to-end tests of the oduel binary: scenario mode, RSP mode, engine
   flag, and the interactive program-mode debugger driven over stdin. *)

let case = Support.case
let oduel = "../bin/oduel.exe"

let run_cli ?stdin args =
  let out_file = Filename.temp_file "oduel_out" ".txt" in
  let stdin_redir =
    match stdin with
    | None -> "< /dev/null"
    | Some text ->
        let f = Filename.temp_file "oduel_in" ".txt" in
        let oc = open_out f in
        output_string oc text;
        close_out oc;
        "< " ^ Filename.quote f
  in
  let cmd =
    Printf.sprintf "%s %s %s > %s 2>/dev/null" (Filename.quote oduel) args
      stdin_redir (Filename.quote out_file)
  in
  let status = Sys.command cmd in
  let ic = open_in out_file in
  let n = in_channel_length ic in
  let out = really_input_string ic n in
  close_in ic;
  (status, out)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains what out needle =
  if not (contains out needle) then
    Alcotest.failf "%s: expected %S in output:\n%s" what needle out

let scenario_oneshot () =
  let status, out = run_cli "-e 'x[1..4,8,12..50] >? 5 <? 10'" in
  Alcotest.(check int) "exit 0" 0 status;
  check_contains "filter hits" out "x[3] = 7";
  check_contains "filter hits" out "x[47] = 6"

let rsp_mode () =
  let status, out = run_cli "--rsp -e 'hash[0]-->next->scope'" in
  Alcotest.(check int) "exit 0" 0 status;
  check_contains "traversal over RSP" out "hash[0]->next->next->next->scope = 1"

let sm_engine_flag () =
  let _, seq_out = run_cli "-e '((1..9)*(1..9))[[52,74]]'" in
  let status, sm_out = run_cli "--engine sm -e '((1..9)*(1..9))[[52,74]]'" in
  Alcotest.(check int) "exit 0" 0 status;
  Alcotest.(check string) "engines agree through the CLI" seq_out sm_out;
  check_contains "select result" sm_out "6*8 = 48"

let bad_scenario () =
  let status, _ = run_cli "--scenario nonsense -e 1" in
  Alcotest.(check bool) "non-zero exit" true (status <> 0)

let repl_session () =
  let script = "1 + 2\nset engine sm\nv[..3]\nhelp\nquit\n" in
  let status, out = run_cli ~stdin:script "" in
  Alcotest.(check int) "exit 0" 0 status;
  check_contains "arithmetic" out "1+2 = 3";
  check_contains "sweep under sm engine" out "v[1] = 1";
  check_contains "help text" out "set engine vm|ir|ast";
  check_contains "help text mentions vm counters" out "info vm"

let program_mode_debugging () =
  let script =
    "break push if v == 4\n\
     run build 6\n\
     v, nalloc\n\
     continue\n\
     continue\n\
     first-->next->value[[0,5]]\n\
     run sum\n\
     quit\n"
  in
  let status, out =
    run_cli ~stdin:script "--program ../examples/programs/list.c"
  in
  Alcotest.(check int) "exit 0" 0 status;
  check_contains "breakpoint reported" out "breakpoint 1 at push if v == 4";
  check_contains "stop announced" out "stopped: breakpoint 1 at push";
  check_contains "local inspected at stop" out "v = 4";
  check_contains "run completes" out "build returned 6";
  check_contains "post-run query" out "first->value = 4";
  check_contains "second run" out "sum returned 13"

let program_watch_assert () =
  let script =
    "watch nalloc\nrun build 2\ncontinue\ncontinue\ndelete 1\n\
     assert nalloc < 3\nrun build 2\nabort\nquit\n"
  in
  let status, out =
    run_cli ~stdin:script "--program ../examples/programs/list.c"
  in
  Alcotest.(check int) "exit 0" 0 status;
  check_contains "watch stop" out "watchpoint 1: nalloc changed";
  check_contains "assertion stop" out "assertion 2 failed: nalloc < 3";
  check_contains "abort surfaces" out "stopped: assertion 2 failed"

(* serve in a child process, connect from this one — the full network
   path: two processes, a real Unix-domain socket, SIGINT shutdown. *)
let serve_connect_end_to_end () =
  let sock = Filename.temp_file "oduel_serve" ".sock" in
  Sys.remove sock;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process oduel
      [| oduel; "serve"; "all"; "--listen"; "unix:" ^ sock |]
      devnull devnull devnull
  in
  let rec wait_sock n =
    if n = 0 then Alcotest.fail "server socket never appeared"
    else if Sys.file_exists sock then ()
    else begin
      Unix.sleepf 0.05;
      wait_sock (n - 1)
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigint with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      Unix.close devnull)
    (fun () ->
      wait_sock 100;
      let status, out =
        run_cli
          ("connect "
          ^ Filename.quote ("unix:" ^ sock)
          ^ " -e 'x[3] = 7' -e 'x[1..4]' -e 'remote x[1..6] >? 3' -e 'info \
             server'")
      in
      Alcotest.(check int) "exit 0" 0 status;
      check_contains "write over the wire" out "x[3] = 7";
      check_contains "remote eval sees the write" out "x[3] = 7";
      check_contains "server counters reported" out "evals";
      check_contains "latency histogram reported" out "p99us")

(* fleet serve in a child process, [oduel diff] against it: the whole
   relative-debugging pipeline through the real binary — fan-out,
   tagged streams, symbolic divergence, and the documented exit codes
   (1 diverged, 0 identical). *)
let fleet_diff_end_to_end () =
  let sock = Filename.temp_file "oduel_fleet" ".sock" in
  Sys.remove sock;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process oduel
      [|
        oduel;
        "serve";
        "fleet(good=deep_list:12,bad=deep_list_buggy:12)";
        "--listen";
        "unix:" ^ sock;
      |]
      devnull devnull devnull
  in
  let rec wait_sock n =
    if n = 0 then Alcotest.fail "server socket never appeared"
    else if Sys.file_exists sock then ()
    else begin
      Unix.sleepf 0.05;
      wait_sock (n - 1)
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigint with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      Unix.close devnull)
    (fun () ->
      wait_sock 100;
      let addr = Filename.quote ("unix:" ^ sock) in
      let status, out =
        run_cli
          (Printf.sprintf "diff %s good bad 'deep-->next->value'" addr)
      in
      Alcotest.(check int) "diverged exit code" 1 status;
      check_contains "seeded index reported" out "value #6";
      check_contains "symbolic path reported" out "deep";
      let status, out =
        run_cli (Printf.sprintf "diff %s good good 'deep-->next->value'" addr)
      in
      Alcotest.(check int) "identical exit code" 0 status;
      check_contains "identical report" out "streams identical";
      (* the connect REPL sees the same fleet *)
      let status, out =
        run_cli
          ("connect " ^ addr
         ^ " -e 'info targets' -e 'use bad' -e 'all * deep->value'")
      in
      Alcotest.(check int) "connect exit 0" 0 status;
      check_contains "roster listed" out "deep_list_buggy:12";
      check_contains "rebinding announced" out "bound to target bad";
      check_contains "fan-out tags its legs" out "bad:")

let suite =
  [
    case "scenario one-shot" scenario_oneshot;
    case "RSP transport flag" rsp_mode;
    case "state-machine engine flag" sm_engine_flag;
    case "bad scenario rejected" bad_scenario;
    case "interactive REPL session" repl_session;
    case "program-mode conditional breakpoint session" program_mode_debugging;
    case "program-mode watch and assert" program_watch_assert;
    case "serve and connect across processes" serve_connect_end_to_end;
    case "fleet diff across processes" fleet_diff_end_to_end;
  ]
