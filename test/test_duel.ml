let () =
  Alcotest.run "duel"
    [
      ("ctype", Test_ctype.suite);
      ("layout", Test_layout.suite);
      ("mem", Test_mem.suite);
      ("cprint", Test_cprint.suite);
      ("target", Test_target.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("ops", Test_ops.suite);
      ("generators", Test_generators.suite);
      ("paper", Test_paper.suite);
      ("engines", Test_engines.suite);
      ("vm", Test_vm.suite);
      ("lower", Test_lower.suite);
      ("display", Test_display.suite);
      ("errors", Test_errors.suite);
      ("rsp", Test_rsp.suite);
      ("backend-conformance", Test_backend_conformance.suite);
      ("dispatcher", Test_dispatcher.suite);
      ("serve", Test_serve.suite);
      ("chaos", Test_chaos.suite);
      ("dcache", Test_dcache.suite);
      ("prefetch", Test_prefetch.suite);
      ("cquery", Test_cquery.suite);
      ("session", Test_session.suite);
      ("minic", Test_minic.suite);
      ("debugger", Test_debugger.suite);
      ("oracle", Test_oracle.suite);
      ("abi-paper", Test_abi_paper.suite);
      ("minic-scenario", Test_minic_scenario.suite);
      ("random-structs", Test_random_structs.suite);
      ("cli", Test_cli.suite);
      ("fuzz", Test_fuzz.suite);
    ]
