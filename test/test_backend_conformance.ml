(* One battery of DBGI assertions run identically against every backend
   the spec language can name — direct, loopback, socket, mangled wires,
   chaos layers, and replicated dispatchers: whatever the interface
   promises must hold regardless of transport, and every layer must be
   observably transparent.

   The whole matrix is a list of spec strings; Backend.of_string is the
   only construction path. *)

module Ctype = Duel_ctype.Ctype
module Dbgi = Duel_dbgi.Dbgi
module Inferior = Duel_target.Inferior
module Build = Duel_target.Build
module Backend = Duel_backend.Backend

let case = Support.case

let backends =
  [
    "direct:all";
    "rsp:all";
    (* the default construction: cache with a coherence probe *)
    "direct:all+cache";
    (* a cache over the packet transport — the remote configuration *)
    "rsp:all+cache";
    (* the same traffic over a real socket through the serve event loop,
       bare and with the probe-less (Explicit-policy) client cache *)
    "serve:all";
    "serve:all+cache";
    (* the traversal prefetch planner over every transport: speculation
       must be observable only in its own counters *)
    "direct:all+prefetch";
    "rsp:all+cache+prefetch";
    "serve:all+prefetch";
    (* speculation under fault injection: the retry layer re-issues
       demand reads, which must not double-resolve speculated lines *)
    "rsp:all+chaos(seed=11,profile=mild-nocall)+prefetch";
    (* injection at fault rate zero must be invisible *)
    "direct:all+flaky(seed=1,profile=off)";
    (* injected transients absorbed by the retry layer.  The call
       channel stays quiet (-nocall): a call is not idempotent, so its
       transient is a typed error by design, which is not what this
       battery asserts — the chaos suite covers that path. *)
    "direct:all+chaos(seed=7,profile=mild-nocall)";
    (* the RSP loopback through a checksum-flipping wire: every damaged
       frame is NAKed and retransmitted, so the battery must pass
       unchanged — including at-most-once alloc/call *)
    "rsp:all+mangle(seed=3,profile=checksum,rate=0.3)";
    (* and through plain byte corruption *)
    "rsp:all+mangle(seed=4,profile=corrupt,rate=0.01)";
    (* the mangler as a socket-level proxy around the serve event loop *)
    "serve:all+mangle(seed=5,profile=checksum,rate=0.2)";
    (* replicated twins behind the dispatcher: identical replicas, a
       flaky primary whose un-retried transients must fail over, mixed
       transports, and a dead secondary that desyncs out of lockstep *)
    "dispatch(direct:all,direct:all)";
    "dispatch(direct:all+flaky(seed=9,profile=mild-nocall),direct:all)";
    "dispatch(rsp:all,direct:all+cache)";
    "dispatch(direct:all,dead:all)";
  ]

(* Run [f label inf dbg] once per backend, each over a fresh debuggee
   ([inf] is the primary replica's inferior — the one whose stdout the
   battery drains and whose addresses every twin shares). *)
let conform f () =
  List.iter
    (fun spec ->
      match Backend.of_string spec with
      | Error m -> Alcotest.fail (spec ^ ": " ^ m)
      | Ok b ->
          Fun.protect ~finally:b.Backend.b_close (fun () ->
              f
                (fun what -> spec ^ ": " ^ what)
                b.Backend.b_inf b.Backend.b_dbg))
    backends

let wild = 0x40000000

let peek_poke =
  conform (fun l _inf dbg ->
      let x =
        match dbg.Dbgi.find_variable "x" with
        | Some { Dbgi.v_addr; _ } -> v_addr
        | None -> Alcotest.fail (l "global x missing")
      in
      dbg.Dbgi.put_bytes ~addr:x (Bytes.of_string "\x01\x02\x03\x04");
      Alcotest.(check string)
        (l "raw bytes roundtrip")
        "\x01\x02\x03\x04"
        (Bytes.to_string (dbg.Dbgi.get_bytes ~addr:x ~len:4));
      Dbgi.write_scalar dbg ~addr:x ~size:4 (-123L);
      Alcotest.(check int64) (l "signed scalar roundtrip") (-123L)
        (Dbgi.read_scalar dbg ~addr:x ~size:4 ~signed:true);
      Alcotest.(check int64)
        (l "same bits unsigned")
        0xffffff85L
        (Dbgi.read_scalar dbg ~addr:x ~size:4 ~signed:false))

let alloc =
  conform (fun l _inf dbg ->
      let a = dbg.Dbgi.alloc_space 16 in
      Alcotest.(check bool) (l "alloc returns an address") true (a > 0);
      Alcotest.(check string)
        (l "fresh space is zeroed")
        (String.make 16 '\000')
        (Bytes.to_string (dbg.Dbgi.get_bytes ~addr:a ~len:16));
      dbg.Dbgi.put_bytes ~addr:a (Bytes.of_string "ok");
      Alcotest.(check string)
        (l "fresh space is writable")
        "ok"
        (Bytes.to_string (dbg.Dbgi.get_bytes ~addr:a ~len:2)))

let calls =
  conform (fun l inf dbg ->
      (match dbg.Dbgi.call_func "abs" [ Dbgi.Cint (Ctype.int, -7L) ] with
      | Dbgi.Cint (t, v) ->
          Alcotest.(check int64) (l "abs(-7)") 7L v;
          Alcotest.(check bool) (l "abs returns int") true (t = Ctype.int)
      | Dbgi.Cfloat _ -> Alcotest.fail (l "abs returned a float"));
      let fmt = Build.cstring inf "val=%d\n" in
      (match
         dbg.Dbgi.call_func "printf"
           [
             Dbgi.Cint (Ctype.ptr Ctype.char, Int64.of_int fmt);
             Dbgi.Cint (Ctype.int, 42L);
           ]
       with
      | Dbgi.Cint (_, n) ->
          Alcotest.(check int64) (l "printf returns byte count") 7L n
      | Dbgi.Cfloat _ -> Alcotest.fail (l "printf returned a float"));
      Alcotest.(check string)
        (l "printf output captured")
        "val=42\n" (Inferior.take_output inf);
      Alcotest.(check bool)
        (l "unknown function fails")
        true
        (match dbg.Dbgi.call_func "nosuch" [] with
        | _ -> false
        | exception Failure _ -> true))

let symbols =
  conform (fun l _inf dbg ->
      (match dbg.Dbgi.find_variable "x" with
      | Some { Dbgi.v_type = Ctype.Array (t, Some 100); _ } ->
          Alcotest.(check bool) (l "x is int[100]") true (t = Ctype.int)
      | _ -> Alcotest.fail (l "global x has wrong shape"));
      (match dbg.Dbgi.find_variable "abs" with
      | Some { Dbgi.v_type = Ctype.Func _; _ } -> ()
      | _ -> Alcotest.fail (l "functions must be visible as symbols"));
      Alcotest.(check bool)
        (l "unknown symbol is None")
        true
        (dbg.Dbgi.find_variable "nosuch" = None))

let frames =
  conform (fun l _inf dbg ->
      let fs = dbg.Dbgi.frames () in
      Alcotest.(check int) (l "three active frames") 3 (List.length fs);
      let inner = List.hd fs in
      Alcotest.(check int) (l "index 0 is innermost") 0 inner.Dbgi.fr_index;
      Alcotest.(check string) (l "innermost function") "fib" inner.Dbgi.fr_func)

let faults =
  conform (fun l _inf dbg ->
      Alcotest.(check bool)
        (l "mapped address readable")
        true
        (Dbgi.readable dbg ~addr:(dbg.Dbgi.alloc_space 4) ~len:4);
      Alcotest.(check bool)
        (l "wild address unreadable")
        false
        (Dbgi.readable dbg ~addr:wild ~len:4);
      (match dbg.Dbgi.get_bytes ~addr:wild ~len:4 with
      | _ -> Alcotest.fail (l "wild read must fault")
      | exception Dbgi.Target_fault { addr; len } ->
          Alcotest.(check int) (l "read fault address") wild addr;
          Alcotest.(check int) (l "read fault length") 4 len);
      match dbg.Dbgi.put_bytes ~addr:wild (Bytes.make 3 'x') with
      | _ -> Alcotest.fail (l "wild write must fault")
      | exception Dbgi.Target_fault { addr; len } ->
          Alcotest.(check int) (l "write fault address") wild addr;
          Alcotest.(check int) (l "write fault length") 3 len)

let zero_length =
  conform (fun l _inf dbg ->
      Alcotest.(check int)
        (l "zero-length read at wild address")
        0
        (Bytes.length (dbg.Dbgi.get_bytes ~addr:wild ~len:0));
      dbg.Dbgi.put_bytes ~addr:wild Bytes.empty;
      Alcotest.(check bool)
        (l "zero-length readable at wild address")
        true
        (Dbgi.readable dbg ~addr:wild ~len:0))

(* The VM arm: the bytecode engine must emit lines bit-identical to the
   reference walker through every backend in the matrix — superinstruction
   fusion and fallback spawning may never observe the transport. *)
module Session = Duel_core.Session

let vm_queries =
  [
    "x[0..3]";
    "#/(1..100)";
    "hash[0]-->next->scope";
    "x[0] = 7; x[0]";
    "(1..5) + x[1]";
    "frames.n";
  ]

let vm_agreement =
  conform (fun l inf dbg ->
      let seq = Session.create ~engine:Session.Seq_engine dbg in
      let vm = Session.create ~engine:Session.Vm_engine dbg in
      List.iter
        (fun q ->
          let a = Session.exec seq q in
          let oa = Inferior.take_output inf in
          let b = Session.exec vm q in
          let ob = Inferior.take_output inf in
          Alcotest.(check (list string)) (l ("vm parity: " ^ q)) a b;
          Alcotest.(check string) (l ("vm stdout parity: " ^ q)) oa ob)
        vm_queries)

(* Every prefetching spec in the matrix must keep its speculation
   ledger balanced after the cache quiesces — including under chaos,
   where retried demand reads must not double-count useful lines (a
   speculative line resolves exactly once, on its first touch). *)
let prefetch_accounting =
  conform (fun l _inf dbg ->
      match Duel_dbgi.Prefetch.stats dbg with
      | None -> ()
      | Some _ ->
          let s = Session.create dbg in
          ignore (Session.exec s "hash[0]-->next->scope");
          ignore (Session.exec s "#/(head-->next->value)");
          Duel_dbgi.Dcache.invalidate dbg;
          let st = Option.get (Duel_dbgi.Prefetch.stats dbg) in
          Alcotest.(check int)
            (l "useful + wasted = issued")
            st.Duel_dbgi.Prefetch.issued
            (st.Duel_dbgi.Prefetch.useful + st.Duel_dbgi.Prefetch.wasted))

let suite =
  [
    case "bytes and scalars roundtrip" peek_poke;
    case "allocated space is zeroed and writable" alloc;
    case "target calls and captured stdout" calls;
    case "symbol lookup covers globals and functions" symbols;
    case "frame queries" frames;
    case "faults carry address and length" faults;
    case "zero-length accesses never fault" zero_length;
    case "vm engine agrees with the walker on every backend" vm_agreement;
    case "speculation ledger balances on every prefetching backend"
      prefetch_accounting;
  ]
