(* The serving layer, over real sockets: deframing under adversarial
   byte boundaries, the event loop with many concurrent clients, the
   robustness machinery (limits, reaper, backpressure, NAK resync,
   graceful shutdown), server-side evaluation, and the probe-less
   client cache's coherence over the wire. *)

module Packet = Duel_rsp.Packet
module Deframer = Packet.Deframer
module Server = Duel_serve.Server
module Client = Duel_serve.Client
module Histogram = Duel_serve.Histogram
module Session = Duel_core.Session
module Scenarios = Duel_scenarios.Scenarios
module Dcache = Duel_dbgi.Dcache
module Dbgi = Duel_dbgi.Dbgi

let case = Support.case

(* --- the incremental deframer -------------------------------------------- *)

let feed_string d s =
  let b = Bytes.of_string s in
  Deframer.feed d b 0 (Bytes.length b)

(* Events from feeding [s] one byte at a time — the worst fragmentation
   a stream can produce. *)
let feed_bytewise d s =
  List.concat_map
    (fun i -> feed_string d (String.make 1 s.[i]))
    (List.init (String.length s) (fun i -> i))

let ev =
  Alcotest.testable
    (fun fmt e ->
      Format.pp_print_string fmt
        (match e with
        | Deframer.Frame p -> "Frame " ^ p
        | Deframer.Bad m -> "Bad " ^ m
        | Deframer.Ack -> "Ack"
        | Deframer.Nak -> "Nak"))
    ( = )

let deframer_split () =
  let d = Deframer.create () in
  let framed = Packet.encode "qDuelStats" ^ "+" ^ Packet.encode "m10,4" in
  Alcotest.(check (list ev))
    "byte-at-a-time stream"
    [ Deframer.Frame "qDuelStats"; Deframer.Ack; Deframer.Frame "m10,4" ]
    (feed_bytewise d framed);
  Alcotest.(check bool) "nothing pending" false (Deframer.pending d)

let deframer_coalesced () =
  let d = Deframer.create () in
  let framed = String.concat "" (List.map Packet.encode [ "a"; "b"; "c" ]) in
  Alcotest.(check (list ev))
    "three frames in one read"
    [ Deframer.Frame "a"; Deframer.Frame "b"; Deframer.Frame "c" ]
    (feed_string d framed)

let deframer_junk_resync () =
  let d = Deframer.create () in
  let evs = feed_string d ("noise" ^ Packet.encode "OK") in
  Alcotest.(check (list ev)) "junk skipped" [ Deframer.Frame "OK" ] evs;
  Alcotest.(check int) "junk counted" 5 (Deframer.junk d)

let deframer_bad_checksum () =
  let d = Deframer.create () in
  match feed_string d ("$abc#00" ^ Packet.encode "ok") with
  | [ Deframer.Bad _; Deframer.Frame "ok" ] -> ()
  | _ -> Alcotest.fail "expected Bad then resynced Frame"

let deframer_split_escape () =
  (* an escaped payload cut in the middle of the escape pair and of the
     checksum must still decode *)
  let payload = "a}b#c$d" in
  let framed = Packet.encode payload in
  let d = Deframer.create () in
  let all =
    List.concat_map (feed_string d)
      [
        String.sub framed 0 3;
        String.sub framed 3 (String.length framed - 4);
        String.sub framed (String.length framed - 1) 1;
      ]
  in
  Alcotest.(check (list ev))
    "escapes across reads"
    [ Deframer.Frame payload ]
    all

let deframer_unterminated () =
  let d = Deframer.create () in
  (* a '$' restarting mid-body abandons the damaged frame *)
  match feed_string d ("$half" ^ Packet.encode "whole") with
  | [ Deframer.Bad _; Deframer.Frame "whole" ] -> ()
  | _ -> Alcotest.fail "expected the half frame dropped, the whole one kept"

(* --- the histogram ------------------------------------------------------- *)

let histogram_percentiles () =
  let h = Histogram.create () in
  for _ = 1 to 90 do
    Histogram.add h 10e-6
  done;
  for _ = 1 to 10 do
    Histogram.add h 10e-3
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  let p50 = Histogram.percentile h 0.50 in
  Alcotest.(check bool)
    "p50 bounds the fast mode" true
    (p50 >= 10e-6 && p50 < 50e-6);
  let p99 = Histogram.percentile h 0.99 in
  Alcotest.(check bool)
    "p99 bounds the slow tail" true
    (p99 >= 10e-3 && p99 < 50e-3);
  Alcotest.(check (float 0.0))
    "empty percentile" 0.0
    (Histogram.percentile (Histogram.create ()) 0.99)

(* --- RSP stub resource limits -------------------------------------------- *)

let rsp_limits () =
  let inf = Scenarios.all () in
  let limits =
    { Duel_rsp.Server.max_read = 8; max_write = 8; max_alloc = 64 }
  in
  let srv = Duel_rsp.Server.create ~limits inf in
  let rpc p = Duel_rsp.Server.handle_payload srv p in
  let x =
    match (Duel_rsp.Client.loopback ~cache:false inf).Dbgi.find_variable "x" with
    | Some { Dbgi.v_addr; _ } -> v_addr
    | None -> Alcotest.fail "x missing"
  in
  Alcotest.(check string)
    "oversized read rejected" "E02"
    (rpc (Printf.sprintf "m%x,9" x));
  Alcotest.(check bool)
    "bounded read succeeds" true
    (rpc (Printf.sprintf "m%x,8" x) <> "E02");
  Alcotest.(check string)
    "oversized write rejected" "E02"
    (rpc (Printf.sprintf "M%x,9:%s" x (String.make 18 '0')));
  Alcotest.(check string)
    "bounded write succeeds" "OK"
    (rpc (Printf.sprintf "M%x,8:%s" x (String.make 16 '0')));
  Alcotest.(check string) "oversized alloc rejected" "E02" (rpc "qDuelAlloc:41");
  Alcotest.(check string) "zero alloc rejected" "E02" (rpc "qDuelAlloc:0");
  Alcotest.(check bool)
    "bounded alloc succeeds" true
    (rpc "qDuelAlloc:40" <> "E02")

(* --- server-side evaluation ---------------------------------------------- *)

let eval_matches_direct () =
  let direct = Session.create (Duel_target.Backend.direct (Scenarios.all ())) in
  let expected = Session.exec direct "x[1..4,8,12..50] >? 5 <? 10" in
  let _srv, cl = Support.socket_stack (Scenarios.all ()) in
  Alcotest.(check (list string))
    "remote eval equals a direct session" expected
    (Client.eval cl "x[1..4,8,12..50] >? 5 <? 10");
  Client.close cl

let eval_chunking () =
  (* 1-line chunks: every result line is its own D frame; reassembly
     must be invisible *)
  let config = { Server.default_config with eval_chunk = 1 } in
  let srv, cl = Support.socket_stack ~config (Scenarios.all ()) in
  Alcotest.(check (list string))
    "many tiny chunks reassemble"
    [ "x[1] = 0"; "x[2] = 0"; "x[3] = 7"; "x[4] = 0" ]
    (Client.eval cl "x[1..4]");
  Alcotest.(check int)
    "every value counted" 4
    (Server.stats srv).Server.eval_values;
  Client.close cl

let eval_captures_stdout () =
  let _srv, cl = Support.socket_stack (Scenarios.all ()) in
  let lines = Client.eval cl "printf(\"%d %d, \", (3,4), 5..7)" in
  Alcotest.(check bool)
    "target stdout crossed the wire" true
    (List.exists (fun l -> Support.contains_sub l "3 5, 3 6, 3 7") lines);
  Client.close cl

let eval_session_persists () =
  let _srv, cl = Support.socket_stack (Scenarios.all ()) in
  ignore (Client.eval cl "t := 41");
  Alcotest.(check (list string))
    "alias survives to the next eval on the same connection"
    [ "t+1 = 42" ]
    (Client.eval cl "t+1");
  Client.close cl

(* --- the event loop under many clients ----------------------------------- *)

let concurrent_clients () =
  let n = 10 in
  let inf = Scenarios.all () in
  let srv = Server.create inf in
  let pump () = ignore (Server.step srv 0.01) in
  let clients =
    List.init n (fun _ ->
        let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
        Server.inject srv a;
        Client.of_fd ~pump b)
  in
  Alcotest.(check int) "all connections live in one loop" n (Server.active srv);
  (* pipelined: every client's eval is in flight before any reply is
     collected *)
  List.iteri
    (fun i cl -> Client.eval_send cl (Printf.sprintf "x[%d] = %d" (i + 50) i))
    clients;
  for _ = 1 to 5 do
    pump ()
  done;
  List.iteri
    (fun i cl ->
      Alcotest.(check (list string))
        (Printf.sprintf "client %d reply" i)
        [ Printf.sprintf "x[%d] = %d" (i + 50) i ]
        (Client.eval_recv cl))
    clients;
  let st = Server.stats srv in
  Alcotest.(check bool)
    (Printf.sprintf "peak_active %d >= %d" st.Server.peak_active n)
    true
    (st.Server.peak_active >= n);
  Alcotest.(check int) "every eval served" n st.Server.evals;
  (* the writes all landed on the one shared target *)
  let direct = Session.create (Duel_target.Backend.direct inf) in
  Alcotest.(check (list string))
    "shared target saw the writes"
    [ "x[52] = 2"; "x[57] = 7" ]
    (Session.exec direct "x[52,57]");
  List.iter Client.close clients;
  for _ = 1 to 3 do
    pump ()
  done;
  Alcotest.(check int) "EOFs reaped every connection" 0 (Server.active srv)

let tcp_listener () =
  let srv = Server.create (Scenarios.all ()) in
  let port = Server.listen_tcp srv ~host:"127.0.0.1" ~port:0 in
  Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
  let pump () = ignore (Server.step srv 0.01) in
  let cl = Client.connect ~pump (Printf.sprintf "127.0.0.1:%d" port) in
  pump ();
  Alcotest.(check int) "accepted inside the loop" 1 (Server.active srv);
  Alcotest.(check (list string))
    "query over TCP" [ "x[3] = 7" ]
    (Client.eval cl "x[3]");
  Client.close cl;
  for _ = 1 to 3 do
    pump ()
  done;
  Alcotest.(check int) "EOF closed it" 0 (Server.active srv);
  Server.shutdown srv;
  while Server.step srv 0.0 do
    ()
  done

(* --- lifecycle robustness ------------------------------------------------ *)

let idle_reaper () =
  let config = { Server.default_config with idle_timeout = 0.05 } in
  let srv, cl = Support.socket_stack ~config (Scenarios.all ()) in
  Alcotest.(check int) "connected" 1 (Server.active srv);
  Unix.sleepf 0.08;
  ignore (Server.step srv 0.0);
  Alcotest.(check int) "idle connection reaped" 0 (Server.active srv);
  Alcotest.(check int) "timeout counted" 1 (Server.stats srv).Server.timeouts;
  Client.close cl

let request_budget () =
  let config = { Server.default_config with max_requests = 2 } in
  let srv, cl = Support.socket_stack ~config (Scenarios.all ()) in
  Alcotest.(check string) "request 1 honoured" "3" (Client.rpc cl "qDuelFrames");
  Alcotest.(check string) "request 2 honoured" "3" (Client.rpc cl "qDuelFrames");
  Alcotest.(check string)
    "request 3 over budget" "E02"
    (Client.rpc cl "qDuelFrames");
  ignore (Server.step srv 0.01);
  Alcotest.(check int) "budget violator closed" 0 (Server.active srv);
  Alcotest.(check int) "rejection counted" 1 (Server.stats srv).Server.limited;
  Client.close cl

let malformed_nak_resync () =
  let srv = Server.create (Scenarios.all ()) in
  let server_end, client_end = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Server.inject srv server_end;
  (* raw bytes: garbage, a frame with a corrupt checksum, then a valid
     request — the server must NAK the damage and still answer *)
  let raw = "!!@@" ^ "$qDuelStats#00" ^ Packet.encode "qDuelFrames" in
  ignore (Unix.write_substring client_end raw 0 (String.length raw));
  for _ = 1 to 3 do
    ignore (Server.step srv 0.01)
  done;
  let buf = Bytes.create 4096 in
  let n = Unix.read client_end buf 0 4096 in
  let d = Deframer.create () in
  (match Deframer.feed d buf 0 n with
  | [ Deframer.Nak; Deframer.Ack; Deframer.Frame "3" ] -> ()
  | evs ->
      Alcotest.failf "expected NAK, ACK, frame-count reply; got %d events"
        (List.length evs));
  Alcotest.(check int) "fault counted" 1 (Server.stats srv).Server.faults;
  Alcotest.(check int)
    "valid frame still served" 1
    (Server.stats srv).Server.packets;
  Unix.close client_end

let client_nak_retransmit () =
  let srv, cl = Support.socket_stack (Scenarios.all ()) in
  let first = Client.rpc cl "qDuelFrames" in
  Alcotest.(check string) "frames over the wire" "3" first;
  (* a bare NAK from the client must bring the same reply back *)
  let again = Packet.decode (Client.exchange cl "-") in
  Alcotest.(check string) "retransmission equals the original" first again;
  Alcotest.(check int) "nak counted" 1 (Server.stats srv).Server.naks;
  Client.close cl

let backpressure () =
  (* A tiny output budget and a small kernel buffer: a huge eval reply
     jams the queue, and the server must stop *reading* the connection
     until the client drains it. *)
  let config = { Server.default_config with max_output = 1024 } in
  let srv = Server.create ~config (Scenarios.big_array 4000) in
  let server_end, client_end = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Unix.setsockopt_int server_end SO_SNDBUF 4096;
  Server.inject srv server_end;
  let pump () = ignore (Server.step srv 0.01) in
  let cl = Client.of_fd ~pump client_end in
  Client.eval_send cl "big[..4000]";
  (* let the server take the request and jam its output queue *)
  for _ = 1 to 5 do
    pump ()
  done;
  Alcotest.(check int)
    "eval request was read" 1
    (Server.stats srv).Server.packets;
  (* a second request arrives while the queue is over budget... *)
  let req = Packet.encode "qDuelFrames" in
  ignore (Unix.write_substring client_end req 0 (String.length req));
  for _ = 1 to 5 do
    pump ()
  done;
  Alcotest.(check int)
    "backpressure: jammed connection is not read" 1
    (Server.stats srv).Server.packets;
  (* ...the client drains the big reply, the queue empties, and only
     then is the second request served *)
  Alcotest.(check int)
    "full reply crossed anyway" 4000
    (List.length (Client.eval_recv cl));
  let reply = Client.recv_reply cl in
  Alcotest.(check bool)
    "queued request served after drain" true
    (int_of_string_opt ("0x" ^ reply) <> None);
  Alcotest.(check int)
    "second packet counted once unjammed" 2
    (Server.stats srv).Server.packets;
  Client.close cl

let graceful_shutdown () =
  let srv, cl = Support.socket_stack (Scenarios.all ()) in
  Alcotest.(check (list string))
    "server alive" [ "x[3] = 7" ]
    (Client.eval cl "x[3]");
  Client.shutdown_server cl;
  (* the OK reply arrived (the rpc returned), so draining worked; now
     the loop must wind down to completion *)
  let rec wind n = if n > 0 && Server.step srv 0.01 then wind (n - 1) in
  wind 100;
  Alcotest.(check int) "all connections closed" 0 (Server.active srv);
  Alcotest.(check bool) "loop reports completion" false (Server.step srv 0.0);
  (match Client.rpc cl "qDuelFrames" with
  | _ -> Alcotest.fail "server must be gone"
  | exception Client.Error f ->
      Alcotest.(check bool)
        "death is a transport-class failure" true
        (Client.is_transport f));
  Client.close cl

(* --- observability ------------------------------------------------------- *)

let stats_report () =
  let srv, cl = Support.socket_stack (Scenarios.all ()) in
  ignore (Client.eval cl "x[1..8] >? 3");
  ignore (Client.rpc cl "qDuelFrames");
  let st = Client.server_stats cl in
  let get k = match List.assoc_opt k st with Some v -> v | None -> -1 in
  Alcotest.(check bool) "packets counted" true (get "packets" >= 2);
  Alcotest.(check int) "evals counted" 1 (get "evals");
  Alcotest.(check bool) "latency samples recorded" true (get "count" >= 2);
  Alcotest.(check bool) "p99 present" true (get "p99us" >= 0);
  Alcotest.(check bool)
    "human rendering has the counters" true
    (List.exists
       (fun l -> Support.contains_sub l "evals: 1 queries")
       (Server.stats_to_lines srv));
  Client.close cl

let stats_have_chaos_counters () =
  let _srv, cl = Support.socket_stack (Scenarios.all ()) in
  let st = Client.server_stats cl in
  Alcotest.(check (option int)) "chaos key" (Some 0) (List.assoc_opt "chaos" st);
  Alcotest.(check (option int))
    "eval_dups key" (Some 0)
    (List.assoc_opt "eval_dups" st);
  Client.close cl

(* --- deframer resync on a frame cut inside its checksum ------------------ *)

(* A frame whose tail was lost, with the next (valid) frame's '$'
   arriving in the same read chunk: consuming the '$' as a checksum
   digit would silently discard the valid frame. *)
let deframer_cut_at_checksum () =
  let good = Packet.encode "m10,4" in
  (* cut after '#': the '$' lands where the first checksum digit goes *)
  let d = Deframer.create () in
  let cut1 = String.sub good 0 (String.length good - 2) in
  Alcotest.(check (list ev))
    "cut before both digits"
    [ Deframer.Bad "frame cut at checksum"; Deframer.Frame "qDuelStats" ]
    (feed_string d (cut1 ^ Packet.encode "qDuelStats"));
  (* cut after one checksum digit: the '$' lands on the second *)
  let d = Deframer.create () in
  let cut2 = String.sub good 0 (String.length good - 1) in
  Alcotest.(check (list ev))
    "cut between the digits"
    [ Deframer.Bad "frame cut at checksum"; Deframer.Frame "qDuelStats" ]
    (feed_string d (cut2 ^ Packet.encode "qDuelStats"));
  (* same, delivered a byte at a time *)
  let d = Deframer.create () in
  Alcotest.(check (list ev))
    "bytewise delivery agrees"
    [ Deframer.Bad "frame cut at checksum"; Deframer.Frame "qDuelStats" ]
    (feed_bytewise d (cut2 ^ Packet.encode "qDuelStats"))

(* --- the receive deadline ------------------------------------------------ *)

let tight_retry = { Client.default_retry with attempts = 2; reply_timeout = 0.1 }

(* The server ACKs the eval request and dies before the first data
   frame: the old client blocked in [select] forever; now the wait is
   deadlined and the EOF is a typed failure. *)
let client_survives_server_death_mid_reply () =
  let server_end, client_end = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  let cl = Client.of_fd ~retry:tight_retry client_end in
  Client.eval_send cl "x[3]";
  let buf = Bytes.create 1024 in
  ignore (Unix.read server_end buf 0 1024);
  ignore (Unix.write_substring server_end "+" 0 1);
  Unix.close server_end;
  let t0 = Unix.gettimeofday () in
  (match Client.eval_recv cl with
  | lines ->
      Alcotest.failf "a dead server answered %S" (String.concat "\\n" lines)
  | exception Client.Error (Client.Closed _) -> ());
  if Unix.gettimeofday () -. t0 > 5. then Alcotest.fail "hung on a dead server";
  Client.close cl

(* ACKed but never answered, connection held open: the reply timeout and
   the bounded resend budget must turn silence into a typed failure. *)
let client_bounds_silent_server () =
  let server_end, client_end = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  let cl = Client.of_fd ~retry:tight_retry client_end in
  Client.eval_send cl "x[3]";
  let buf = Bytes.create 1024 in
  ignore (Unix.read server_end buf 0 1024);
  ignore (Unix.write_substring server_end "+" 0 1);
  let t0 = Unix.gettimeofday () in
  (match Client.eval_recv cl with
  | lines ->
      Alcotest.failf "a silent server answered %S" (String.concat "\\n" lines)
  | exception Client.Error (Client.Timeout _) -> ());
  let dt = Unix.gettimeofday () -. t0 in
  if dt > 5. then Alcotest.failf "gave up only after %.1f s" dt;
  Alcotest.(check bool)
    "the reply wait timed out at least once" true
    ((Client.counters cl).Client.timeouts >= 1);
  Unix.close server_end;
  Client.close cl

(* A qDuelEvalSeq whose budget is already spent must be refused typed,
   without evaluating. *)
let eval_seq_budget_expired () =
  let srv, cl = Support.socket_stack (Scenarios.all ()) in
  Alcotest.(check string)
    "deadline refusal" "F7;deadline"
    (Client.rpc cl "qDuelEvalSeq:7,0;x[3]");
  Alcotest.(check int) "nothing evaluated" 0 (Server.stats srv).Server.evals;
  Client.close cl

(* --- client-cache coherence over the wire -------------------------------- *)

let eval_invalidates_client_cache () =
  let inf = Scenarios.all () in
  let _srv, cl = Support.socket_stack inf in
  let dbg =
    Client.dbgi ~cache:true cl (Duel_rsp.Client.debug_info_of_inferior inf)
  in
  Alcotest.(check bool) "wrapped in a cache" true (Dcache.is_cached dbg);
  Alcotest.(check bool)
    "probe-less policy" true
    (Dcache.coherence_probe dbg = None);
  let x =
    match dbg.Dbgi.find_variable "x" with
    | Some { Dbgi.v_addr; _ } -> v_addr
    | None -> Alcotest.fail "x missing"
  in
  Alcotest.(check int64) "cold read" 7L
    (Dbgi.read_scalar dbg ~addr:(x + 12) ~size:4 ~signed:true);
  (* a server-side eval writes the same slot behind the cache's back *)
  ignore (Client.eval cl "x[3] = 99");
  Alcotest.(check int64)
    "eval marked the cache stale: fresh value visible" 99L
    (Dbgi.read_scalar dbg ~addr:(x + 12) ~size:4 ~signed:true);
  Client.close cl

(* --- the shared query-plan cache ----------------------------------------- *)

(* One server, [n] injected client connections, one pump. *)
let plan_stack ?config n =
  let inf = Scenarios.all () in
  let srv = Server.create ?config inf in
  let pump () = ignore (Server.step srv 0.01) in
  let clients =
    List.init n (fun _ ->
        let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
        Server.inject srv a;
        Client.of_fd ~pump b)
  in
  (srv, clients)

(* The headline behaviour: the same query from two different connections
   compiles once and hits once, and both get the same (correct) lines. *)
let plan_shared_across_connections () =
  let direct = Session.create (Duel_target.Backend.direct (Scenarios.all ())) in
  let expected = Session.exec direct "hash[0]-->next->scope" in
  let srv, clients = plan_stack 2 in
  let c1, c2 = match clients with [ a; b ] -> (a, b) | _ -> assert false in
  Alcotest.(check (list string))
    "first connection (miss + compile)" expected
    (Client.eval c1 "hash[0]-->next->scope");
  Alcotest.(check (list string))
    "second connection (hit)" expected
    (Client.eval c2 "hash[0]-->next->scope");
  let st = Server.stats srv in
  Alcotest.(check int) "one compile" 1 st.Server.plan_compiles;
  Alcotest.(check int) "one miss" 1 st.Server.plan_misses;
  Alcotest.(check int) "one hit" 1 st.Server.plan_hits;
  (* the counters are on the wire too *)
  let wire = Client.server_stats c1 in
  Alcotest.(check (option int)) "plan_hits on the wire" (Some 1)
    (List.assoc_opt "plan_hits" wire);
  Alcotest.(check (option int)) "plan_compiles on the wire" (Some 1)
    (List.assoc_opt "plan_compiles" wire);
  List.iter Client.close clients

(* Keying is by token stream: spellings differing only in whitespace
   share one plan. *)
let plan_whitespace_normalized () =
  let srv, clients = plan_stack 1 in
  let cl = List.hd clients in
  let l1 = Client.eval cl "#/( 1 ..    40 )" in
  let l2 = Client.eval cl "  #/(1..40)" in
  Alcotest.(check (list string)) "same lines" [ "#/(1..40) = 40" ] l1;
  Alcotest.(check (list string)) "spellings agree" l1 l2;
  let st = Server.stats srv in
  Alcotest.(check int) "one compile for both spellings" 1
    st.Server.plan_compiles;
  Alcotest.(check int) "second spelling hit" 1 st.Server.plan_hits;
  List.iter Client.close clients

(* A store through any path bumps the target's write-generation and
   retires every plan compiled under the old one. *)
let plan_invalidated_by_store () =
  let srv, clients = plan_stack 1 in
  let cl = List.hd clients in
  ignore (Client.eval cl "x[10..12]");
  ignore (Client.eval cl "x[10..12]");
  let st = Server.stats srv in
  Alcotest.(check int) "warm: one compile" 1 st.Server.plan_compiles;
  Alcotest.(check int) "warm: one hit" 1 st.Server.plan_hits;
  (* the store itself evals through the cache too; what matters is that
     the generation moved under the pure query's plan *)
  Alcotest.(check (list string)) "store lands" [ "x[11] = 5" ]
    (Client.eval cl "x[11] = 5; x[11]");
  Alcotest.(check (list string)) "query re-reads the target"
    [ "x[10] = 0"; "x[11] = 5"; "x[12] = 0" ]
    (Client.eval cl "x[10..12]");
  let st = Server.stats srv in
  Alcotest.(check bool) "stale plan retired" true (st.Server.plan_inval >= 1);
  Alcotest.(check bool) "recompiled under the new generation" true
    (st.Server.plan_compiles >= 2);
  List.iter Client.close clients

(* Errors follow the same contract through a cached plan as through the
   interpreter path, and non-lexing input falls through cleanly. *)
let plan_error_parity () =
  let direct = Session.create (Duel_target.Backend.direct (Scenarios.all ())) in
  let srv, clients = plan_stack 1 in
  let cl = List.hd clients in
  let q = "nosuchname + 1" in
  let expected = Session.exec direct q in
  Alcotest.(check (list string)) "miss path error" expected (Client.eval cl q);
  Alcotest.(check (list string)) "hit path error" expected (Client.eval cl q);
  Alcotest.(check int) "runtime errors don't stop caching" 1
    (Server.stats srv).Server.plan_hits;
  let lex_err = Client.eval cl "x $ 2" in
  Alcotest.(check bool) "lex failure falls through to the session" true
    (List.exists (fun l -> Support.contains_sub l "syntax error") lex_err);
  List.iter Client.close clients

let plan_lru_eviction () =
  let config = { Server.default_config with plan_cache = 2 } in
  let srv, clients = plan_stack ~config 1 in
  let cl = List.hd clients in
  ignore (Client.eval cl "1+1");
  ignore (Client.eval cl "2+2");
  ignore (Client.eval cl "3+3");
  let st = Server.stats srv in
  Alcotest.(check int) "capacity overflow evicts LRU" 1 st.Server.plan_evict;
  (* the survivor (most recently used) still hits *)
  ignore (Client.eval cl "3+3");
  Alcotest.(check int) "survivor hits" 1 (Server.stats srv).Server.plan_hits;
  List.iter Client.close clients

let plan_disabled () =
  let config = { Server.default_config with plan_cache = 0 } in
  let srv, clients = plan_stack ~config 1 in
  let cl = List.hd clients in
  Alcotest.(check (list string)) "evals still work" [ "#/(1..9) = 9" ]
    (Client.eval cl "#/(1..9)");
  ignore (Client.eval cl "#/(1..9)");
  let st = Server.stats srv in
  Alcotest.(check int) "no compiles" 0 st.Server.plan_compiles;
  Alcotest.(check int) "no hits" 0 st.Server.plan_hits;
  Alcotest.(check int) "no misses" 0 st.Server.plan_misses;
  List.iter Client.close clients

(* Per-connection alias state stays per-connection even when both
   connections run the same cached plan (clone isolation). *)
let plan_alias_isolation () =
  let _srv, clients = plan_stack 2 in
  let c1, c2 = match clients with [ a; b ] -> (a, b) | _ -> assert false in
  ignore (Client.eval c1 "pv := 41");
  ignore (Client.eval c2 "pv := 1000");
  Alcotest.(check (list string)) "c1's alias" [ "pv+1 = 42" ]
    (Client.eval c1 "pv+1");
  Alcotest.(check (list string)) "c2's alias" [ "pv+1 = 1001" ]
    (Client.eval c2 "pv+1");
  List.iter Client.close clients

(* --- histogram and stats merging (the sharded stats substrate) ----------- *)

let histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 3e-6;
  Histogram.add a 200e-6;
  Histogram.add b 5e-6;
  let m = Histogram.merge a b in
  Alcotest.(check int) "merged count" 3 (Histogram.count m);
  Alcotest.(check int) "left input unchanged" 2 (Histogram.count a);
  Alcotest.(check int) "right input unchanged" 1 (Histogram.count b);
  (* same bucket boundaries on both sides, so the merge is exact:
     percentiles answer over the union of the sample streams *)
  Alcotest.(check bool)
    "p99 covers the slow sample" true
    (Histogram.percentile m 0.99 >= 128e-6);
  Alcotest.(check bool)
    "p50 stays with the fast majority" true
    (Histogram.percentile m 0.5 <= 8e-6);
  Alcotest.(check int)
    "merging empties is empty" 0
    (Histogram.count (Histogram.merge (Histogram.create ()) (Histogram.create ())))

let merge_stats_sums () =
  let srv1, c1 = Support.socket_stack (Scenarios.all ()) in
  let srv2, c2 = Support.socket_stack (Scenarios.all ()) in
  ignore (Client.eval c1 "x[3]");
  ignore (Client.eval c1 "x[4]");
  ignore (Client.eval c2 "x[5]");
  let s1 = Server.stats srv1 and s2 = Server.stats srv2 in
  let m = Server.merge_stats s1 s2 in
  Alcotest.(check int) "evals sum" (s1.Server.evals + s2.Server.evals)
    m.Server.evals;
  Alcotest.(check int) "packets sum" (s1.Server.packets + s2.Server.packets)
    m.Server.packets;
  Alcotest.(check int) "bytes_in sum" (s1.Server.bytes_in + s2.Server.bytes_in)
    m.Server.bytes_in;
  Alcotest.(check int) "histograms merge"
    (Histogram.count s1.Server.hist + Histogram.count s2.Server.hist)
    (Histogram.count m.Server.hist);
  (* merge builds a fresh record; the inputs keep their own counters *)
  Alcotest.(check int) "left intact" 2 s1.Server.evals;
  Alcotest.(check int) "right intact" 1 s2.Server.evals;
  Client.close c1;
  Client.close c2

(* --- the domain-safe plan cache ------------------------------------------ *)

(* Four workers (three spawned domains plus this one) hammer one
   8-entry cache with overlapping keys and rotating generations: no
   crash, no torn entry, and the capacity invariant holds under every
   interleaving.  This is the directed race test for the cache the
   sharded server shares across domains. *)
let plan_cache_hammer () =
  let module PC = Duel_serve.Plan_cache in
  let s =
    Session.create (Duel_target.Backend.direct (Scenarios.all ()))
  in
  let prog =
    Duel_core.Compile.compile (Session.compile s (Session.parse s "1"))
  in
  let cache = PC.create 8 in
  let errors = Atomic.make 0 in
  let worker () =
    try
      for i = 1 to 2000 do
        let key = Printf.sprintf "k%d" (i mod 12) in
        let gen = i mod 3 in
        (match PC.find cache ~key ~gen with
        | PC.Hit _ -> ()
        | PC.Stale | PC.Absent -> ignore (PC.store cache ~key ~gen prog));
        if PC.resident cache > 8 then Atomic.incr errors
      done
    with _ -> Atomic.incr errors
  in
  let ds = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join ds;
  Alcotest.(check int) "no invariant violations" 0 (Atomic.get errors);
  Alcotest.(check bool) "capacity holds after the storm" true
    (PC.resident cache <= 8);
  ignore (PC.store cache ~key:"final" ~gen:7 prog);
  Alcotest.(check bool) "hit at the stored generation" true
    (match PC.find cache ~key:"final" ~gen:7 with
    | PC.Hit _ -> true
    | _ -> false);
  Alcotest.(check bool) "a moved generation reads stale" true
    (match PC.find cache ~key:"final" ~gen:8 with
    | PC.Stale -> true
    | _ -> false)

(* --- at-most-once is per-connection (the server.mli contract) ------------ *)

let eval_seq_per_connection () =
  let srv, clients = plan_stack 4 in
  let c1, c2, c4, creader =
    match clients with
    | [ a; b; c; d ] -> (a, b, c, d)
    | _ -> assert false
  in
  let st = Server.stats srv in
  let read_x0 () =
    match Client.eval creader "x[0]" with
    | [ line ] ->
        int_of_string
          (String.trim
             (match String.split_on_char '=' line with
             | [ _; v ] -> v
             | _ -> Alcotest.failf "unparsable: %s" line))
    | other -> Alcotest.failf "unexpected reply: %s" (String.concat "|" other)
  in
  let before = read_x0 () in
  let evals0 = st.Server.evals in
  let bump = "qDuelEvalSeq:a;x[0] = x[0] + 1;" in
  (* the same sequence number from two different connections: both
     execute; neither replays the other's reply *)
  let r1 = Client.rpc c1 bump in
  ignore (Client.rpc c2 bump);
  Alcotest.(check int) "both executed" (evals0 + 2) st.Server.evals;
  Alcotest.(check int) "no replays" 0 st.Server.eval_dups;
  (* resending on the same connection replays the stored reply without
     re-executing *)
  let r1' = Client.rpc c1 bump in
  Alcotest.(check string) "replay is verbatim" r1 r1';
  Alcotest.(check int) "replay did not evaluate" (evals0 + 2) st.Server.evals;
  Alcotest.(check int) "counted as a dup" 1 st.Server.eval_dups;
  (* a fresh connection starts with an empty replay table: the same seq
     executes again — the reconnect caveat server.mli documents *)
  ignore (Client.rpc c4 bump);
  Alcotest.(check int) "fresh connection executed" (evals0 + 3)
    st.Server.evals;
  Alcotest.(check int) "exactly three increments landed" (before + 3)
    (read_x0 ());
  List.iter Client.close clients

(* --- the sharded server --------------------------------------------------- *)

module Sharded = Duel_serve.Sharded

(* N shard loops in background domains, M clients on real blocking IO
   over injected socketpairs (round-robin across shards).  This is the
   cross-domain configuration proper — no cooperative pump anywhere. *)
let sharded_rig ?config ~shards nclients =
  let inf = Scenarios.all () in
  let srv =
    match config with
    | None -> Sharded.create ~shards inf
    | Some config -> Sharded.create ~config ~shards inf
  in
  Sharded.start srv;
  let clients =
    List.init nclients (fun _ ->
        let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
        Sharded.inject srv a;
        Client.of_fd b)
  in
  (srv, clients)

let sharded_teardown srv clients =
  List.iter Client.close clients;
  Sharded.shutdown srv;
  Sharded.join srv

let sharded_eval_basic () =
  let direct =
    Session.create (Duel_target.Backend.direct (Scenarios.all ()))
  in
  let query = "hash[0..5].v[0..2] >? 2" in
  let expected = Session.exec direct query in
  let srv, clients = sharded_rig ~shards:2 4 in
  List.iter
    (fun cl ->
      Alcotest.(check (list string))
        "sharded eval equals a direct session" expected (Client.eval cl query))
    clients;
  (* the round-robin hand-off spread the connections evenly *)
  Alcotest.(check (list int))
    "per-shard distribution" [ 2; 2 ]
    (List.map (fun s -> (Server.stats s).Server.accepted) (Sharded.shards srv));
  (* any shard answers with the merged whole-server numbers *)
  let v = Sharded.merged_view srv in
  Alcotest.(check int) "merged evals" 4 v.Server.v_st.Server.evals;
  Alcotest.(check int) "merged accepts" 4 v.Server.v_st.Server.accepted;
  sharded_teardown srv clients

let sharded_tcp_reuseport () =
  let direct =
    Session.create (Duel_target.Backend.direct (Scenarios.all ()))
  in
  let query = "x[1..4,8,12..50] >? 5 <? 10" in
  let expected = Session.exec direct query in
  let srv = Sharded.create ~shards:2 (Scenarios.all ()) in
  let port = Sharded.listen_tcp srv ~host:"127.0.0.1" ~port:0 in
  Sharded.start srv;
  let addr = Printf.sprintf "127.0.0.1:%d" port in
  let clients = List.init 4 (fun _ -> Client.connect addr) in
  List.iter
    (fun cl ->
      Alcotest.(check (list string))
        "eval over SO_REUSEPORT TCP" expected (Client.eval cl query))
    clients;
  (* the kernel balances accepts; only the total is deterministic *)
  Alcotest.(check int) "all connections accepted" 4
    (List.fold_left
       (fun n s -> n + (Server.stats s).Server.accepted)
       0 (Sharded.shards srv));
  sharded_teardown srv clients

(* Graceful drain mid-stream: a reply already queued when the shutdown
   arrives is still delivered before the shard closes. *)
let sharded_drain_mid_stream () =
  let direct =
    Session.create (Duel_target.Backend.direct (Scenarios.all ()))
  in
  let query = "x[1..4] >? 5" in
  let expected = Session.exec direct query in
  let srv, clients = sharded_rig ~shards:2 2 in
  let c1 = List.hd clients in
  Client.eval_send c1 query;
  (* wait until the query has actually been served into c1's reply
     queue, then shut the whole server down from this domain *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    (Sharded.merged_view srv).Server.v_st.Server.evals < 1
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.002
  done;
  Sharded.shutdown srv;
  Alcotest.(check (list string))
    "queued reply survives the drain" expected (Client.eval_recv c1);
  Sharded.join srv;
  List.iter Client.close clients

let sharded_idle_reap () =
  let config = { Server.default_config with idle_timeout = 0.05 } in
  let srv, clients = sharded_rig ~config ~shards:2 2 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    (Sharded.merged_view srv).Server.v_st.Server.timeouts < 2
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.002
  done;
  let v = Sharded.merged_view srv in
  Alcotest.(check int) "every shard reaped its idler" 2
    v.Server.v_st.Server.timeouts;
  Alcotest.(check int) "no live connections remain" 0 v.Server.v_active;
  sharded_teardown srv clients

(* --- the target fleet ----------------------------------------------------- *)

module Fleet = Duel_fleet.Fleet
module Fdiff = Duel_fleet.Diff

(* One server hosting a fleet, [n] injected client connections sharing
   one cooperative pump — the fleet twin of [plan_stack]. *)
let fleet_stack ?config ?(n = 1) spec =
  let fleet =
    match Fleet.of_string spec with
    | Ok f -> f
    | Error m -> Alcotest.fail ("fleet spec: " ^ m)
  in
  let inf = (List.hd (Fleet.targets fleet)).Fleet.inf in
  let srv =
    match config with
    | None -> Server.create ~fleet inf
    | Some config -> Server.create ~config ~fleet inf
  in
  let pump () = ignore (Server.step srv 0.01) in
  let clients =
    List.init n (fun _ ->
        let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
        Server.inject srv a;
        Client.of_fd ~pump b)
  in
  (srv, fleet, clients)

(* Roster and binding: qDuelTargets lists the slots in declaration
   order, a fresh connection is bound to the first, and qDuelUse
   rebinds with a fresh session over the chosen target. *)
let fleet_roster_and_bind () =
  let _srv, _fleet, clients = fleet_stack "fleet(a=all,b=deep_list:8)" in
  let cl = List.hd clients in
  Alcotest.(check (list (pair string string)))
    "roster" [ ("a", "all"); ("b", "deep_list:8") ] (Client.targets cl);
  Alcotest.(check (list string))
    "bound to the first slot by default" [ "x[3] = 7" ] (Client.eval cl "x[3]");
  Client.use_target cl "b";
  let direct =
    Session.create (Duel_target.Backend.direct (Scenarios.deep_list 8))
  in
  Alcotest.(check (list string))
    "rebound eval runs against the chosen target"
    (Session.exec direct "deep-->next->value")
    (Client.eval cl "deep-->next->value");
  List.iter Client.close clients

(* A fleet-less server answers the fleet verbs honestly: an empty
   roster, and E03 on any bind attempt. *)
let fleet_verbs_without_fleet () =
  let _srv, cl = Support.socket_stack (Scenarios.all ()) in
  Alcotest.(check (list (pair string string)))
    "no roster" [] (Client.targets cl);
  (match Client.use_target cl "a" with
  | () -> Alcotest.fail "bind on a fleet-less server must fail"
  | exception Client.Error (Client.Unknown_target "a") -> ());
  Client.close cl

(* The directed satellite test: binding an unknown id raises the typed
   [Unknown_target] failure, which is not transport-class (retrying
   elsewhere cannot help) and renders its id. *)
let fleet_unknown_target_typed () =
  let _srv, _fleet, clients = fleet_stack "fleet(a=all)" in
  let cl = List.hd clients in
  (match Client.use_target cl "nosuch" with
  | () -> Alcotest.fail "expected Unknown_target"
  | exception Client.Error (Client.Unknown_target id as f) ->
      Alcotest.(check string) "carries the id" "nosuch" id;
      Alcotest.(check bool)
        "not transport-class" false (Client.is_transport f);
      Alcotest.(check bool)
        "message names the target" true
        (Support.contains_sub (Client.failure_message f) "nosuch"));
  (* the connection survives the refusal: still bound to slot 0 *)
  Alcotest.(check (list string))
    "connection still usable" [ "x[3] = 7" ] (Client.eval cl "x[3]");
  List.iter Client.close clients

(* Isolation proper: a store into one target neither changes a
   sibling's values nor retires the sibling's cached plan or data —
   generations, plan entries and dcaches are all per-target. *)
let fleet_write_isolation () =
  let srv, fleet, clients = fleet_stack ~n:2 "fleet(a=all,b=all)" in
  let c1, c2 = match clients with [ a; b ] -> (a, b) | _ -> assert false in
  let tgt id =
    match Fleet.find fleet id with Some t -> t | None -> assert false
  in
  Client.use_target c2 "b";
  let quiet = [ "x[10] = 0"; "x[11] = 0"; "x[12] = 0" ] in
  Alcotest.(check (list string)) "a cold" quiet (Client.eval c1 "x[10..12]");
  Alcotest.(check (list string)) "a warm" quiet (Client.eval c1 "x[10..12]");
  let gen_a = Fleet.generation (tgt "a") in
  (* store through b *)
  Alcotest.(check (list string))
    "store lands in b" [ "x[11] = 5" ]
    (Client.eval c2 "x[11] = 5; x[11]");
  Alcotest.(check bool)
    "b's generation moved" true
    (Fleet.generation (tgt "b") > 0);
  Alcotest.(check int) "a's generation did not" gen_a
    (Fleet.generation (tgt "a"));
  let st = Server.stats srv in
  Alcotest.(check int) "a's plan survived the sibling store" 0
    st.Server.plan_inval;
  Alcotest.(check (list string))
    "a still reads its own memory" quiet
    (Client.eval c1 "x[10..12]");
  Alcotest.(check (list string))
    "b sees its own store" [ "x[10] = 0"; "x[11] = 5"; "x[12] = 0" ]
    (Client.eval c2 "x[10..12]");
  (* same token stream, two targets: two distinct plan entries *)
  Alcotest.(check bool)
    "plans are keyed per-target" true
    ((Server.stats srv).Server.plan_compiles >= 3);
  List.iter Client.close clients

(* Fan-out with a dead member and an unknown id: each leg fails (or
   faults) alone, the healthy legs stream their full results. *)
let fleet_eval_all_isolates_legs () =
  let _srv, _fleet, clients = fleet_stack "fleet(a=all,x=dead:all)" in
  let cl = List.hd clients in
  let legs = Client.eval_all cl [] "x[3]" in
  Alcotest.(check int) "two legs back" 2 (List.length legs);
  (match List.assoc_opt "a" legs with
  | Some (Ok lines) ->
      Alcotest.(check (list string)) "healthy leg" [ "x[3] = 7" ] lines
  | _ -> Alcotest.fail "leg a missing or failed");
  (match List.assoc_opt "x" legs with
  | Some (Ok lines) ->
      (* the dead target's faults surface inside its own leg's stream *)
      Alcotest.(check bool)
        "dead leg reports its fault" true
        (List.exists
           (fun l -> Support.contains_sub l "Transient target fault")
           lines)
  | _ -> Alcotest.fail "leg x missing");
  (* an unknown id in an explicit selection fails its leg only *)
  let legs = Client.eval_all cl [ "a"; "zz" ] "x[3]" in
  (match List.assoc_opt "a" legs with
  | Some (Ok lines) ->
      Alcotest.(check (list string)) "a unaffected" [ "x[3] = 7" ] lines
  | _ -> Alcotest.fail "leg a missing or failed");
  (match List.assoc_opt "zz" legs with
  | Some (Error msg) ->
      Alcotest.(check bool)
        "zz refused by name" true (Support.contains_sub msg "unknown")
  | _ -> Alcotest.fail "leg zz should have failed");
  List.iter Client.close clients

(* The headline demo as a test: twin targets, one seeded buggy, and the
   diff lands exactly on the seeded index with the seeded values. *)
let fleet_divergence_at_seeded_index () =
  let _srv, _fleet, clients =
    fleet_stack "fleet(good=deep_list:40,bad=deep_list_buggy:40)"
  in
  let cl = List.hd clients in
  let legs = Client.eval_all cl [ "good"; "bad" ] "deep-->next->value" in
  let leg id =
    match List.assoc_opt id legs with
    | Some (Ok lines) -> lines
    | _ -> Alcotest.fail ("leg " ^ id ^ " missing or failed")
  in
  (match Fdiff.diff (leg "good") (leg "bad") with
  | Fdiff.Diverged { index; left; right } ->
      Alcotest.(check int)
        "diverges at the seeded index" (Scenarios.buggy_index 40) index;
      Alcotest.(check string) "good value" "60" left.Fdiff.d_value;
      Alcotest.(check string) "off-by-one value" "61" right.Fdiff.d_value;
      Alcotest.(check bool)
        "symbolic path reported" true
        (Support.contains_sub left.Fdiff.d_sym "deep")
  | _ -> Alcotest.fail "twins must diverge");
  List.iter Client.close clients

(* The swapped-link twin diverges at the same index but with the
   successor's value — a different signature for the same position. *)
let fleet_swapped_link_signature () =
  let _srv, _fleet, clients =
    fleet_stack "fleet(good=deep_list:40,sw=deep_list_swapped:40)"
  in
  let cl = List.hd clients in
  let legs = Client.eval_all cl [] "deep-->next->value" in
  let leg id =
    match List.assoc_opt id legs with
    | Some (Ok lines) -> lines
    | _ -> Alcotest.fail ("leg " ^ id ^ " missing or failed")
  in
  (match Fdiff.diff (leg "good") (leg "sw") with
  | Fdiff.Diverged { index; left; right } ->
      Alcotest.(check int)
        "same seeded index" (Scenarios.buggy_index 40) index;
      Alcotest.(check bool)
        "values traded places" true
        (left.Fdiff.d_value <> right.Fdiff.d_value)
  | _ -> Alcotest.fail "swapped twin must diverge");
  List.iter Client.close clients

(* Identical twins diff clean, and the report says so. *)
let fleet_identical_targets_diff_clean () =
  let _srv, _fleet, clients =
    fleet_stack "fleet(a=deep_list:12,b=deep_list:12)"
  in
  let cl = List.hd clients in
  let legs = Client.eval_all cl [] "deep-->next->value" in
  let leg id =
    match List.assoc_opt id legs with
    | Some (Ok lines) -> lines
    | _ -> Alcotest.fail ("leg " ^ id ^ " missing or failed")
  in
  let outcome = Fdiff.diff (leg "a") (leg "b") in
  (match outcome with
  | Fdiff.Equal n -> Alcotest.(check int) "all values compared" 12 n
  | _ -> Alcotest.fail "identical targets must not diverge");
  Alcotest.(check bool)
    "report says identical" true
    (List.exists
       (fun l -> Support.contains_sub l "identical")
       (Fdiff.report ~id_a:"a" ~id_b:"b" outcome));
  List.iter Client.close clients

(* The diff core, off the wire: alignment, length mismatch, laziness. *)
let fleet_diff_unit () =
  let s = Fdiff.split_line "deep-->next[[3]]->value = 9" in
  Alcotest.(check string) "sym" "deep-->next[[3]]->value" s.Fdiff.d_sym;
  Alcotest.(check string) "value" "9" s.Fdiff.d_value;
  let bare = Fdiff.split_line "just output" in
  Alcotest.(check string) "bare line has no sym" "" bare.Fdiff.d_sym;
  Alcotest.(check string) "bare line is all value" "just output"
    bare.Fdiff.d_value;
  (* symbolic parts differing alone do not diverge *)
  (match Fdiff.diff [ "a = 1"; "b = 2" ] [ "x = 1"; "y = 2" ] with
  | Fdiff.Equal 2 -> ()
  | _ -> Alcotest.fail "values equal, syms ignored");
  (match Fdiff.diff [ "a = 1" ] [ "a = 1"; "a = 2" ] with
  | Fdiff.Left_short { index = 1; right } ->
      Alcotest.(check string) "first extra" "2" right.Fdiff.d_value
  | _ -> Alcotest.fail "expected Left_short");
  (match Fdiff.diff [ "a = 1"; "a = 2" ] [ "a = 1" ] with
  | Fdiff.Right_short { index = 1; left } ->
      Alcotest.(check string) "first extra" "2" left.Fdiff.d_value
  | _ -> Alcotest.fail "expected Right_short");
  (* lazy: the diff must not pull past the first divergence *)
  let pulled = ref 0 in
  let counted n =
    Seq.init n (fun i ->
        incr pulled;
        Printf.sprintf "v = %d" (if i = 2 then 100 else i))
  in
  (match Fdiff.diff_seq (counted 1000) (Seq.init 1000 (Printf.sprintf "v = %d"))
   with
  | Fdiff.Diverged { index = 2; _ } -> ()
  | _ -> Alcotest.fail "expected divergence at 2");
  Alcotest.(check bool) "stopped at the divergence" true (!pulled <= 4)

(* Per-target counters ride the stats wire and the human rendering. *)
let fleet_per_target_stats () =
  let srv, _fleet, clients = fleet_stack "fleet(a=all,b=all)" in
  let cl = List.hd clients in
  ignore (Client.eval cl "x[1..4]");
  Client.use_target cl "b";
  ignore (Client.eval cl "x[3]");
  ignore (Client.eval_all cl [] "x[3]");
  let st = Client.server_stats cl in
  let get k = match List.assoc_opt k st with Some v -> v | None -> -1 in
  Alcotest.(check int) "a evals" 2 (get "tgt.a.evals");
  Alcotest.(check int) "b binds" 1 (get "tgt.b.binds");
  Alcotest.(check int) "b evals" 2 (get "tgt.b.evals");
  Alcotest.(check int) "a values" 5 (get "tgt.a.values");
  Alcotest.(check int) "a errors" 0 (get "tgt.a.errors");
  Alcotest.(check bool)
    "human rendering has the targets" true
    (List.exists
       (fun l -> Support.contains_sub l "target a (all)")
       (Server.stats_to_lines srv));
  List.iter Client.close clients

(* The cross-domain configuration: two shards over one shared fleet,
   concurrent bound evals and a fan-out, ending in the seeded diff. *)
let fleet_sharded () =
  let fleet =
    match
      Fleet.of_string "fleet(good=deep_list:40,bad=deep_list_buggy:40)"
    with
    | Ok f -> f
    | Error m -> Alcotest.fail m
  in
  let inf = (List.hd (Fleet.targets fleet)).Fleet.inf in
  let srv = Sharded.create ~fleet ~shards:2 inf in
  Sharded.start srv;
  let clients =
    List.init 4 (fun _ ->
        let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
        Sharded.inject srv a;
        Client.of_fd b)
  in
  let exec_direct inf q =
    Session.exec (Session.create (Duel_target.Backend.direct inf)) q
  in
  let expected_good =
    exec_direct (Scenarios.deep_list 40) "deep-->next->value"
  in
  let expected_bad =
    exec_direct (Scenarios.deep_list_buggy 40) "deep-->next->value"
  in
  List.iteri
    (fun i cl ->
      if i mod 2 = 1 then Client.use_target cl "bad";
      Alcotest.(check (list string))
        "every shard serves the bound target"
        (if i mod 2 = 1 then expected_bad else expected_good)
        (Client.eval cl "deep-->next->value"))
    clients;
  let legs = Client.eval_all (List.hd clients) [] "deep-->next->value" in
  let leg id =
    match List.assoc_opt id legs with
    | Some (Ok lines) -> lines
    | _ -> Alcotest.fail ("leg " ^ id ^ " missing or failed")
  in
  (match Fdiff.diff (leg "good") (leg "bad") with
  | Fdiff.Diverged { index; _ } ->
      Alcotest.(check int)
        "sharded fan-out finds the seed" (Scenarios.buggy_index 40) index
  | _ -> Alcotest.fail "twins must diverge");
  sharded_teardown srv clients

let suite =
  [
    case "deframer survives byte-at-a-time delivery" deframer_split;
    case "deframer splits coalesced frames" deframer_coalesced;
    case "deframer skips junk and resyncs" deframer_junk_resync;
    case "deframer reports bad checksums and recovers" deframer_bad_checksum;
    case "deframer handles escapes split across reads" deframer_split_escape;
    case "deframer abandons unterminated frames" deframer_unterminated;
    case "histogram percentiles bound the modes" histogram_percentiles;
    case "RSP stub enforces resource limits" rsp_limits;
    case "remote eval equals a direct session" eval_matches_direct;
    case "eval chunking is invisible" eval_chunking;
    case "eval ships target stdout" eval_captures_stdout;
    case "eval sessions are per-connection" eval_session_persists;
    case "ten concurrent clients in one loop" concurrent_clients;
    case "TCP listener end to end" tcp_listener;
    case "idle connections are reaped" idle_reaper;
    case "request budget closes the connection" request_budget;
    case "malformed frames are NAKed and resynced" malformed_nak_resync;
    case "a client NAK retransmits the reply" client_nak_retransmit;
    case "backpressure pauses reads until drained" backpressure;
    case "graceful shutdown drains and completes" graceful_shutdown;
    case "qDuelStats reports live counters" stats_report;
    case "qDuelStats carries the chaos counters" stats_have_chaos_counters;
    case "deframer resyncs on a frame cut at its checksum"
      deframer_cut_at_checksum;
    case "client survives a server dying mid-reply"
      client_survives_server_death_mid_reply;
    case "client bounds a silent server with its deadline"
      client_bounds_silent_server;
    case "spent eval budget is refused without evaluating"
      eval_seq_budget_expired;
    case "remote eval invalidates the client cache"
      eval_invalidates_client_cache;
    case "plan cache shared across connections" plan_shared_across_connections;
    case "plan keying normalizes whitespace" plan_whitespace_normalized;
    case "plan invalidated by a target store" plan_invalidated_by_store;
    case "plan path keeps the error contract" plan_error_parity;
    case "plan cache evicts LRU at capacity" plan_lru_eviction;
    case "plan cache can be disabled" plan_disabled;
    case "cached plans keep aliases per-connection" plan_alias_isolation;
    case "histogram merge is exact and fresh" histogram_merge;
    case "merge_stats sums counters and histograms" merge_stats_sums;
    case "plan cache survives a multi-domain hammer" plan_cache_hammer;
    case "at-most-once is per-connection, not per-server"
      eval_seq_per_connection;
    case "two shards serve four injected clients" sharded_eval_basic;
    case "SO_REUSEPORT shards share one TCP port" sharded_tcp_reuseport;
    case "sharded drain delivers queued replies" sharded_drain_mid_stream;
    case "each shard reaps its own idlers" sharded_idle_reap;
    case "fleet roster and target binding" fleet_roster_and_bind;
    case "fleet verbs degrade honestly without a fleet"
      fleet_verbs_without_fleet;
    case "binding an unknown target is a typed failure"
      fleet_unknown_target_typed;
    case "stores into one target leave siblings' caches alone"
      fleet_write_isolation;
    case "fan-out isolates dead and unknown legs" fleet_eval_all_isolates_legs;
    case "twin targets diverge at the seeded index"
      fleet_divergence_at_seeded_index;
    case "swapped-link twin carries its own signature"
      fleet_swapped_link_signature;
    case "identical targets diff clean" fleet_identical_targets_diff_clean;
    case "diff alignment, shortfall and laziness" fleet_diff_unit;
    case "per-target counters ride the stats wire" fleet_per_target_stats;
    case "two shards share one fleet" fleet_sharded;
  ]
