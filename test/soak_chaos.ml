(* Standalone chaos soak driver — the CI `chaos-soak` job's entry point.

   Usage: soak_chaos.exe [--duration SECONDS] [SEED ...]

   For each seed it assembles the chaotic stacks (direct rig, mangled RSP
   loopback rig, cache-without-retry, and the serve socket stack with
   server-side fault injection) and replays a query corpus against a
   clean oracle until the wall-clock budget is spent.  Any divergence
   other than the typed transient error is a failure; the offending seed
   is printed so the schedule replays exactly:

     dune exec test/soak_chaos.exe -- <seed>

   Exit status: 0 all seeds converged, 1 a seed failed, 2 bad usage. *)

module Dbgi = Duel_dbgi.Dbgi
module Dcache = Duel_dbgi.Dcache
module Backend = Duel_target.Backend
module Scenarios = Duel_scenarios.Scenarios
module Session = Duel_core.Session
module Chaos = Duel_chaos.Chaos
module Mangler = Duel_chaos.Mangler
module Prng = Duel_chaos.Prng
module Server = Duel_serve.Server
module Sharded = Duel_serve.Sharded
module Client = Duel_serve.Client
module Fleet = Duel_fleet.Fleet

let nosleep _ = ()

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Same discipline as the alcotest battery: call-free mutations or pure
   reads — nothing a command-level retry could double-execute. *)
let corpus =
  [
    "x[3]";
    "x[0..9]";
    "w[0..9]";
    "head-->next->value";
    "root-->(left,right)->key";
    "hash[0]-->next->scope";
    "v[1] = 42";
    "v[1]";
    "mat[1][2]";
    "uv.i";
    "sizeof(struct symbol)";
    "strlen(s)";
    "abs(-7)";
  ]

let oracle =
  lazy
    (let s = Session.create (Backend.direct (Scenarios.all ())) in
     List.map
       (fun q ->
         let lines = Session.exec s q in
         if lines = [] || List.exists (fun l -> contains_sub l "error") lines
         then (
           Printf.eprintf "BROKEN CORPUS %S: %s\n%!" q
             (String.concat " | " lines);
           exit 2);
         (q, lines))
       corpus)

let is_transient out =
  List.exists (fun l -> contains_sub l "Transient target fault") out

exception Diverged of string

let soak_session ~label ~seed s =
  List.iter
    (fun (q, want) ->
      let rec settle tries =
        if tries > 300 then
          raise
            (Diverged
               (Printf.sprintf "%s seed %d: %S never converged" label seed q));
        let out = Session.exec s q in
        if out = want then ()
        else if is_transient out then settle (tries + 1)
        else
          raise
            (Diverged
               (Printf.sprintf "%s seed %d: %S answered %S, oracle %S" label
                  seed q
                  (String.concat "\\n" out)
                  (String.concat "\\n" want)))
      in
      settle 0)
    (Lazy.force oracle)

let seeded_hook ?(max_burst = 2) seed =
  let prng = Prng.create seed in
  let burst = Hashtbl.create 8 in
  fun point ->
    let key, rate =
      match point with
      | Server.Accept -> (0, 0.)
      | Server.Reply_drop -> (1, 0.15)
      | Server.Reply_truncate -> (2, 0.15)
      | Server.Stall_read -> (3, 0.05)
      | Server.Stall_write -> (4, 0.05)
    in
    let b = try Hashtbl.find burst key with Not_found -> 0 in
    if b < max_burst && Prng.chance prng rate then begin
      Hashtbl.replace burst key (b + 1);
      true
    end
    else begin
      Hashtbl.replace burst key 0;
      false
    end

let quick_retry =
  {
    Client.attempts = 10;
    reply_timeout = 0.25;
    base_backoff = 0.001;
    max_backoff = 0.01;
    jitter = 0.5;
  }

let soak_serve ~seed =
  let inf = Scenarios.all () in
  let config =
    { Server.default_config with Server.fault_hook = Some (seeded_hook seed) }
  in
  let srv = Server.create ~config inf in
  let server_end, client_end = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Server.inject srv server_end;
  let cl =
    Client.of_fd
      ~pump:(fun () -> ignore (Server.step srv 0.005))
      ~retry:quick_retry client_end
  in
  List.iter
    (fun (q, want) ->
      let got = Client.eval cl q in
      if got <> want then
        raise
          (Diverged
             (Printf.sprintf "serve seed %d: %S answered %S, oracle %S" seed q
                (String.concat "\\n" got)
                (String.concat "\\n" want))))
    (Lazy.force oracle);
  let injected = (Server.stats srv).Server.chaos in
  Client.close cl;
  injected

(* The same corpus against the *sharded* server: two shard loops in
   their own domains, two clients on real blocking IO (the soak's one
   pump-free rig — genuine cross-domain serving is the point).  The
   seeded hook keeps per-point burst state in a Hashtbl, so the one
   hook both shards share runs under a mutex; the interleaving across
   domains is the kernel's, but every injection still comes from the
   seed's schedule. *)
let soak_serve_sharded ~seed =
  let locked_hook =
    let hook = seeded_hook seed in
    let m = Mutex.create () in
    fun point -> Mutex.protect m (fun () -> hook point)
  in
  let config =
    { Server.default_config with Server.fault_hook = Some locked_hook }
  in
  let srv = Sharded.create ~config ~shards:2 (Scenarios.all ()) in
  Sharded.start srv;
  let clients =
    List.init 2 (fun _ ->
        let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
        Sharded.inject srv a;
        Client.of_fd ~retry:quick_retry b)
  in
  List.iter
    (fun cl ->
      List.iter
        (fun (q, want) ->
          let got = Client.eval cl q in
          if got <> want then
            raise
              (Diverged
                 (Printf.sprintf
                    "sharded serve seed %d: %S answered %S, oracle %S" seed q
                    (String.concat "\\n" got)
                    (String.concat "\\n" want))))
        (Lazy.force oracle))
    clients;
  let injected = (Sharded.merged_view srv).Server.v_st.Server.chaos in
  List.iter Client.close clients;
  Sharded.shutdown srv;
  Sharded.join srv;
  injected

(* The fleet rig: three targets behind one server, one of them with a
   fault-injected raw layer (wired in through [Fleet.create ~wrap], the
   hook the fleet grew for exactly this).  Every corpus query fans out
   with [eval_all]; the clean siblings must match the oracle on the
   first try — a chaotic member must never leak faults, stale cache
   lines or plan entries into another target's leg — while the chaotic
   member itself must converge to the oracle through the transient
   churn. *)
let soak_serve_fleet ~seed =
  let plan = Chaos.plan ~seed Chaos.nasty in
  let wrap id dbg =
    if id = "c" then Chaos.wrap_dbgi ~sleep:nosleep plan dbg else dbg
  in
  let fleet =
    match Fleet.create ~wrap [ ("a", "all"); ("b", "all"); ("c", "all") ] with
    | Ok f -> f
    | Error m -> raise (Diverged ("fleet rig: " ^ m))
  in
  let inf = (List.hd (Fleet.targets fleet)).Fleet.inf in
  let srv = Server.create ~fleet inf in
  let server_end, client_end = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Server.inject srv server_end;
  let cl =
    Client.of_fd
      ~pump:(fun () -> ignore (Server.step srv 0.005))
      ~retry:quick_retry client_end
  in
  List.iter
    (fun (q, want) ->
      let rec settle tries =
        if tries > 300 then
          raise
            (Diverged
               (Printf.sprintf "fleet seed %d: %S never converged on c" seed q));
        let legs = Client.eval_all cl [] q in
        let leg id =
          match List.assoc_opt id legs with
          | Some (Ok lines) -> lines
          | Some (Error m) ->
              raise
                (Diverged
                   (Printf.sprintf "fleet seed %d: %S leg %s failed: %s" seed q
                      id m))
          | None ->
              raise
                (Diverged
                   (Printf.sprintf "fleet seed %d: %S leg %s missing" seed q id))
        in
        List.iter
          (fun id ->
            let got = leg id in
            if got <> want then
              raise
                (Diverged
                   (Printf.sprintf
                      "fleet seed %d: clean leg %s of %S answered %S, oracle %S"
                      seed id q
                      (String.concat "\\n" got)
                      (String.concat "\\n" want))))
          [ "a"; "b" ];
        let c = leg "c" in
        if c = want then ()
        else if is_transient c then settle (tries + 1)
        else
          raise
            (Diverged
               (Printf.sprintf
                  "fleet seed %d: chaotic leg of %S answered %S, oracle %S"
                  seed q
                  (String.concat "\\n" c)
                  (String.concat "\\n" want)))
      in
      settle 0)
    (Lazy.force oracle);
  let st = Chaos.stats plan in
  Client.close cl;
  st.Chaos.read_faults + st.Chaos.write_faults

let soak_seed ~duration seed =
  let t0 = Unix.gettimeofday () in
  let rounds = ref 0 and injected = ref 0 in
  while Unix.gettimeofday () -. t0 < duration do
    incr rounds;
    (* vary the sub-seeds per round so a long soak explores new
       schedules while staying replayable from (seed, round) *)
    let sub = seed + (!rounds * 7919) in
    let rig =
      Chaos.rig_direct ~seed:sub ~sleep:nosleep Chaos.nasty (Scenarios.all ())
    in
    soak_session ~label:"rig-direct" ~seed:sub (Session.create rig.Chaos.dbg);
    let st = Chaos.stats rig.Chaos.plan_ in
    injected := !injected + st.Chaos.read_faults + st.Chaos.write_faults;
    let rig =
      Chaos.rig_loopback ~seed:sub ~sleep:nosleep Chaos.mild (Scenarios.all ())
    in
    soak_session ~label:"rig-loopback" ~seed:sub
      (Session.create rig.Chaos.dbg);
    let inf = Scenarios.all () in
    let plan = Chaos.plan ~seed:sub Chaos.nasty in
    soak_session ~label:"dcache-no-retry" ~seed:sub
      (Session.create
         (Dcache.wrap
            (Chaos.wrap_dbgi ~sleep:nosleep plan
               (Backend.direct ~cache:false inf))));
    (* the replica dispatcher: a fault-injected primary, a dead replica
       and a healthy one behind one spec string — reads must converge on
       the oracle through failover, never serving a stale dirty range *)
    let built =
      match
        Duel_backend.Backend.of_string
          (Printf.sprintf
             "dispatch(direct:all+flaky(seed=%d,profile=nasty-nocall),dead:all,direct:all;trip=2,probe=10ms)"
             sub)
      with
      | Ok b -> b
      | Error m -> raise (Diverged ("dispatcher rig: " ^ m))
    in
    soak_session ~label:"dispatcher" ~seed:sub
      (Session.create built.Duel_backend.Backend.b_dbg);
    List.iter
      (fun (_, rig) ->
        let st = Chaos.stats rig.Chaos.plan_ in
        injected := !injected + st.Chaos.read_faults + st.Chaos.write_faults)
      built.Duel_backend.Backend.b_rigs;
    built.Duel_backend.Backend.b_close ();
    (* the prefetching chaotic stack: speculative read-ahead under fault
       injection.  Retried demand reads must not double-resolve
       speculated lines, speculative faults stay swallowed, and after
       every round the quiesced ledger must balance exactly. *)
    let built =
      match
        Duel_backend.Backend.of_string
          (Printf.sprintf "rsp:all+chaos(seed=%d,profile=mild-nocall)+prefetch"
             sub)
      with
      | Ok b -> b
      | Error m -> raise (Diverged ("prefetch rig: " ^ m))
    in
    let pdbg = built.Duel_backend.Backend.b_dbg in
    soak_session ~label:"prefetch-chaos" ~seed:sub (Session.create pdbg);
    Dcache.invalidate pdbg;
    (match Duel_dbgi.Prefetch.stats pdbg with
    | Some st ->
        if
          st.Duel_dbgi.Prefetch.issued
          <> st.Duel_dbgi.Prefetch.useful + st.Duel_dbgi.Prefetch.wasted
        then
          raise
            (Diverged
               (Printf.sprintf
                  "prefetch-chaos seed %d: ledger issued=%d useful=%d wasted=%d"
                  sub st.Duel_dbgi.Prefetch.issued st.Duel_dbgi.Prefetch.useful
                  st.Duel_dbgi.Prefetch.wasted))
    | None -> raise (Diverged "prefetch rig: no predictor attached"));
    List.iter
      (fun (_, rig) ->
        let st = Chaos.stats rig.Chaos.plan_ in
        injected := !injected + st.Chaos.read_faults + st.Chaos.write_faults)
      built.Duel_backend.Backend.b_rigs;
    built.Duel_backend.Backend.b_close ();
    injected := !injected + (soak_serve ~seed:sub);
    injected := !injected + (soak_serve_sharded ~seed:sub);
    injected := !injected + (soak_serve_fleet ~seed:sub)
  done;
  Printf.printf "seed %d: %d rounds, %d faults injected, all converged\n%!"
    seed !rounds !injected

let () =
  let duration = ref 10.0 in
  let seeds = ref [] in
  let rec parse = function
    | [] -> ()
    | "--duration" :: v :: rest ->
        (match float_of_string_opt v with
        | Some d when d > 0. -> duration := d
        | _ ->
            prerr_endline "soak_chaos: --duration wants a positive number";
            exit 2);
        parse rest
    | s :: rest ->
        (match int_of_string_opt s with
        | Some n -> seeds := n :: !seeds
        | None ->
            Printf.eprintf "soak_chaos: bad seed %S\n" s;
            exit 2);
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seeds =
    match List.rev !seeds with [] -> [ 1; 2; 3; 4; 5; 6; 7; 8 ] | l -> l
  in
  try List.iter (soak_seed ~duration:!duration) seeds
  with Diverged msg ->
    Printf.eprintf "FAIL %s\n%!" msg;
    exit 1
