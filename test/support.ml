(* Shared helpers for the test suites. *)

module Session = Duel_core.Session
module Env = Duel_core.Env
module Inferior = Duel_target.Inferior
module Scenarios = Duel_scenarios.Scenarios

type kit = { session : Session.t; inf : Inferior.t }

let kit ?(engine = Session.Seq_engine) ?(scenario = `All) () =
  let inf =
    match scenario with
    | `All -> Scenarios.all ()
    | `Symtab -> Scenarios.symtab ()
    | `Faulty -> Scenarios.faulty ()
    | `Big n -> Scenarios.big_array n
  in
  { session = Session.create ~engine (Duel_target.Backend.direct inf); inf }

let kit_rsp ?(engine = Session.Seq_engine) () =
  let inf = Scenarios.all () in
  { session = Session.create ~engine (Duel_rsp.Client.loopback inf); inf }

(* A whole network stack inside one process: the serve event loop owns
   one end of a socketpair, the client the other, and blocking waits on
   the client side pump the loop instead — deterministic concurrency
   with no threads or forks. *)
let socket_stack ?config inf =
  let srv = Duel_serve.Server.create ?config inf in
  let server_end, client_end = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Duel_serve.Server.inject srv server_end;
  let cl =
    Duel_serve.Client.of_fd
      ~pump:(fun () -> ignore (Duel_serve.Server.step srv 0.01))
      client_end
  in
  (srv, cl)

(* A [Dbgi.t] whose live state crosses the socket (debug info is read
   locally from the same inferior, as gdb reads it from the binary). *)
let socket_dbgi ?(cache = true) inf =
  let _srv, cl = socket_stack inf in
  Duel_serve.Client.dbgi ~cache cl (Duel_rsp.Client.debug_info_of_inferior inf)

(* Retry tuned for in-process chaos runs: waits are pump-driven and
   short, so a lost reply costs milliseconds, not the 2 s wire default. *)
let quick_retry =
  {
    Duel_serve.Client.attempts = 10;
    reply_timeout = 0.25;
    base_backoff = 0.001;
    max_backoff = 0.01;
    jitter = 0.5;
  }

(* The socket stack with a chaos byte-mangler spliced into the wire: the
   client talks to a [Duel_chaos.Proxy] relay which talks to the real
   server loop, both pumped cooperatively from the client's waits. *)
let mangled_socket_stack ?config ~up ~down inf =
  let srv = Duel_serve.Server.create ?config inf in
  let proxy, client_end, server_end = Duel_chaos.Proxy.between ~up ~down () in
  Duel_serve.Server.inject srv server_end;
  let pump () =
    ignore (Duel_serve.Server.step srv 0.005);
    ignore (Duel_chaos.Proxy.step proxy 0.005)
  in
  let cl = Duel_serve.Client.of_fd ~pump ~retry:quick_retry client_end in
  (srv, cl)

let mangled_socket_dbgi ?(cache = false) ~up ~down inf =
  let _srv, cl = mangled_socket_stack ~up ~down inf in
  Duel_serve.Client.dbgi ~cache cl (Duel_rsp.Client.debug_info_of_inferior inf)

(* One reusable session per engine: alias pollution across cases is part of
   real usage, but tests that care create their own kit. *)
let exec k q = Session.exec k.session q
let exec1 k q = match exec k q with [ l ] -> l | ls -> String.concat "\n" ls

let check_query k q expected () =
  Alcotest.(check (list string)) q expected (exec k q)

let check_line k q expected () = Alcotest.(check string) q expected (exec1 k q)

let case name f = Alcotest.test_case name `Quick f

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A shared kitchen-sink debuggee for read-only queries (building the
   1024-bucket table per case would dominate test time); tests with side
   effects on the target make their own kit. *)
let shared = lazy (kit ())

let q name query expected =
  case name (fun () -> check_query (Lazy.force shared) query expected ())

(* Same but only the single output line. *)
let q1 name query expected =
  case name (fun () -> check_line (Lazy.force shared) query expected ())

(* Same against a fresh debuggee (for queries with side effects). *)
let qf name query expected =
  case name (fun () -> check_query (kit ()) query expected ())
