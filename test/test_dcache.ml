(* The target-memory data cache: hit/miss accounting, line and page
   boundary behaviour, exact fault passthrough, write coalescing and
   flush ordering, invalidation around target operations, LRU bounds,
   and the coherence snoop.

   The backend here is a hand-rolled [Dbgi.t] over a raw [Memory.t] that
   records every backend access, so each test can assert exactly which
   round-trips the cache did and did not make. *)

module Dbgi = Duel_dbgi.Dbgi
module Dcache = Duel_dbgi.Dcache
module Memory = Duel_mem.Memory

let case = Support.case

type event = Read of int * int | Write of int * int  (* addr, len *)

type fake = {
  dbg : Dbgi.t;
  mem : Memory.t;
  events : event list ref;  (* most recent first *)
  calls : string list ref;
}

(* One mapped page at [page], zero-filled; everything else faults. *)
let page = 0x1000

let make_fake ?(map_size = Memory.page_size) () =
  let mem = Memory.create () in
  Memory.map mem ~addr:page ~size:map_size;
  let events = ref [] in
  let calls = ref [] in
  let get_bytes ~addr ~len =
    if len = 0 then Bytes.create 0
    else begin
      events := Read (addr, len) :: !events;
      try Memory.read mem ~addr ~len
      with Memory.Fault _ -> raise (Dbgi.Target_fault { addr; len })
    end
  in
  let put_bytes ~addr data =
    if Bytes.length data > 0 then begin
      events := Write (addr, Bytes.length data) :: !events;
      try Memory.write mem ~addr data
      with Memory.Fault _ ->
        raise (Dbgi.Target_fault { addr; len = Bytes.length data })
    end
  in
  let dbg =
    {
      Dbgi.abi = Duel_ctype.Abi.lp64;
      get_bytes;
      put_bytes;
      alloc_space =
        (fun size ->
          calls := Printf.sprintf "alloc %d" size :: !calls;
          page + Memory.page_size - size);
      call_func =
        (fun name _ ->
          calls := name :: !calls;
          Dbgi.Cint (Duel_ctype.Ctype.int, 0L));
      find_variable = (fun _ -> None);
      tenv = Duel_ctype.Tenv.create ();
      frames = (fun () -> []);
      caps = Dbgi.basic_caps "fake";
      health = Dbgi.always_healthy;
    }
  in
  { dbg; mem; events; calls }

let wrap ?(config = Dcache.default_config) fake =
  Dcache.wrap ~config fake.dbg

let stats dbg =
  match Dcache.stats dbg with
  | Some st -> st
  | None -> Alcotest.fail "expected a cached interface"

let backend_reads fake =
  List.length
    (List.filter (function Read _ -> true | _ -> false) !(fake.events))

let backend_writes fake =
  List.length
    (List.filter (function Write _ -> true | _ -> false) !(fake.events))

let check_int = Alcotest.(check int)
let check_bytes msg a b = Alcotest.(check string) msg (Bytes.to_string a) (Bytes.to_string b)

(* --- read path ----------------------------------------------------------- *)

let hit_miss_accounting () =
  let fake = make_fake () in
  Memory.write fake.mem ~addr:page (Bytes.of_string "abcdefgh");
  let dbg = wrap fake in
  let first = dbg.Dbgi.get_bytes ~addr:page ~len:4 in
  check_bytes "first read" (Bytes.of_string "abcd") first;
  check_int "one fill" 1 (backend_reads fake);
  let again = dbg.Dbgi.get_bytes ~addr:(page + 4) ~len:4 in
  check_bytes "same line" (Bytes.of_string "efgh") again;
  check_int "no second fill" 1 (backend_reads fake);
  let st = stats dbg in
  check_int "hits" 1 st.Dcache.hits;
  check_int "misses" 1 st.Dcache.misses;
  check_int "fills" 1 st.Dcache.fills;
  check_int "bytes served" 8 st.Dcache.bytes_read;
  (* the fill read one whole line, not the 4 requested bytes *)
  (match !(fake.events) with
  | [ Read (a, l) ] ->
      check_int "fill at line base" page a;
      check_int "fill is line-sized" Dcache.default_config.Dcache.line_size l
  | _ -> Alcotest.fail "expected exactly one backend read")

let line_spanning_read () =
  let fake = make_fake () in
  let dbg = wrap fake in
  let ls = Dcache.default_config.Dcache.line_size in
  (* spans two lines: two fills, one miss *)
  ignore (dbg.Dbgi.get_bytes ~addr:(page + ls - 2) ~len:4);
  let st = stats dbg in
  check_int "one miss" 1 st.Dcache.misses;
  check_int "two fills" 2 st.Dcache.fills;
  check_int "two backend reads" 2 (backend_reads fake);
  (* both lines now resident: reading either side is a hit *)
  ignore (dbg.Dbgi.get_bytes ~addr:page ~len:ls);
  ignore (dbg.Dbgi.get_bytes ~addr:(page + ls) ~len:ls);
  check_int "no more fills" 2 (backend_reads fake)

let partial_line_fallback () =
  (* Line rounding must not turn a readable tail of a mapping into a
     fault: use lines twice the page size, so the line enclosing a
     one-page mapping always crosses into unmapped space and every fill
     fails, exercising the exact-range fallback. *)
  let fake = make_fake () in
  Memory.write fake.mem ~addr:page (Bytes.of_string "abcdefgh");
  let config =
    {
      Dcache.default_config with
      Dcache.line_size = 2 * Memory.page_size;
      max_lines = 4;
    }
  in
  let dbg = wrap ~config fake in
  let got = dbg.Dbgi.get_bytes ~addr:page ~len:8 in
  check_bytes "fallback read succeeds" (Bytes.of_string "abcdefgh") got;
  (* fill attempt + exact-range retry *)
  check_int "fill failed, exact retry" 2 (backend_reads fake);
  (match !(fake.events) with
  | Read (a, l) :: _ ->
      check_int "retry uses exact addr" page a;
      check_int "retry uses exact len" 8 l
  | _ -> Alcotest.fail "expected a backend read");
  check_int "still no resident lines" 0 (Dcache.cached_lines dbg)

let fault_passthrough () =
  let fake = make_fake () in
  let dbg = wrap fake in
  let wild = 0x40000000 in
  (match dbg.Dbgi.get_bytes ~addr:wild ~len:8 with
  | _ -> Alcotest.fail "expected Target_fault"
  | exception Dbgi.Target_fault { addr; len } ->
      check_int "fault addr is the request's" wild addr;
      check_int "fault len is the request's" 8 len);
  (* a write to unmapped space reports the same exact range *)
  (match dbg.Dbgi.put_bytes ~addr:wild (Bytes.make 8 'x') with
  | () -> Alcotest.fail "expected Target_fault on write"
  | exception Dbgi.Target_fault { addr; len } ->
      check_int "write fault addr" wild addr;
      check_int "write fault len" 8 len)

let zero_length_accesses () =
  let fake = make_fake () in
  let dbg = wrap fake in
  let wild = 0x40000000 in
  check_int "get len 0 returns empty" 0
    (Bytes.length (dbg.Dbgi.get_bytes ~addr:wild ~len:0));
  dbg.Dbgi.put_bytes ~addr:wild (Bytes.create 0);
  check_int "no backend traffic" 0 (List.length !(fake.events));
  Alcotest.(check bool) "readable len 0" true (Dbgi.readable dbg ~addr:wild ~len:0)

let readable_from_cache () =
  let fake = make_fake () in
  let dbg = wrap fake in
  ignore (dbg.Dbgi.get_bytes ~addr:page ~len:8);
  let before = backend_reads fake in
  Alcotest.(check bool) "readable answers from cached line" true
    (Dbgi.readable dbg ~addr:(page + 8) ~len:8);
  check_int "no backend probe" before (backend_reads fake);
  Alcotest.(check bool) "unreadable still detected" false
    (Dbgi.readable dbg ~addr:0x40000000 ~len:8)

(* --- write path ---------------------------------------------------------- *)

let write_coalescing_and_flush () =
  let fake = make_fake () in
  let dbg = wrap fake in
  (* scalar-at-a-time ascending stores, as an assignment loop issues *)
  for i = 0 to 7 do
    dbg.Dbgi.put_bytes ~addr:(page + (4 * i)) (Bytes.make 4 (Char.chr (65 + i)))
  done;
  check_int "no backend writes before flush" 0 (backend_writes fake);
  check_int "backend stale" 0 (Memory.read_u8 fake.mem page);
  check_bytes "read-your-writes"
    (Bytes.of_string "AAAABBBB")
    (dbg.Dbgi.get_bytes ~addr:page ~len:8);
  Dcache.flush dbg;
  check_int "one coalesced backend write" 1 (backend_writes fake);
  (match !(fake.events) with
  | Write (a, l) :: _ ->
      check_int "coalesced write addr" page a;
      check_int "coalesced write len" 32 l
  | _ -> Alcotest.fail "expected a backend write");
  check_bytes "backend now current"
    (Bytes.of_string "AAAABBBBCCCC")
    (Memory.read fake.mem ~addr:page ~len:12);
  (* a second flush has nothing to do *)
  Dcache.flush dbg;
  check_int "flush is idempotent" 1 (backend_writes fake)

let overlapping_writes_last_wins () =
  let fake = make_fake () in
  let dbg = wrap fake in
  dbg.Dbgi.put_bytes ~addr:page (Bytes.of_string "xxxxxxxx");
  dbg.Dbgi.put_bytes ~addr:(page + 2) (Bytes.of_string "YY");
  Dcache.flush dbg;
  check_int "overlap coalesced into one write" 1 (backend_writes fake);
  check_bytes "later bytes win"
    (Bytes.of_string "xxYYxxxx")
    (Memory.read fake.mem ~addr:page ~len:8)

let disjoint_writes_flush_ascending () =
  let fake = make_fake () in
  let dbg = wrap fake in
  (* two ranges with a gap, issued high address first *)
  dbg.Dbgi.put_bytes ~addr:(page + 100) (Bytes.of_string "high");
  dbg.Dbgi.put_bytes ~addr:page (Bytes.of_string "low!");
  Dcache.flush dbg;
  let writes =
    List.filter_map
      (function Write (a, l) -> Some (a, l) | Read _ -> None)
      (List.rev !(fake.events))
  in
  match writes with
  | [ (a1, _); (a2, _) ] ->
      check_int "first flushed write is the low range" page a1;
      check_int "second is the high range" (page + 100) a2
  | _ ->
      Alcotest.failf "expected exactly two backend writes, got %d"
        (List.length writes)

let auto_flush_on_pending_limit () =
  let fake = make_fake () in
  let config = { Dcache.default_config with Dcache.max_pending = 64 } in
  let dbg = wrap ~config fake in
  for i = 0 to 16 do
    dbg.Dbgi.put_bytes ~addr:(page + (8 * i)) (Bytes.make 8 '.')
  done;
  Alcotest.(check bool) "buffer bound forced a flush" true
    (backend_writes fake > 0)

(* --- invalidation -------------------------------------------------------- *)

let target_ops_flush_then_invalidate () =
  let fake = make_fake () in
  let dbg = wrap fake in
  ignore (dbg.Dbgi.get_bytes ~addr:page ~len:8);
  dbg.Dbgi.put_bytes ~addr:page (Bytes.of_string "dirty!!!");
  Alcotest.(check bool) "lines resident" true (Dcache.cached_lines dbg > 0);
  ignore (dbg.Dbgi.call_func "poke" []);
  (* the buffered write reached the backend before the call *)
  check_int "pending flushed before call" 1 (backend_writes fake);
  check_bytes "backend saw the write"
    (Bytes.of_string "dirty!!!")
    (Memory.read fake.mem ~addr:page ~len:8);
  check_int "cache dropped" 0 (Dcache.cached_lines dbg);
  let st = stats dbg in
  check_int "invalidation counted" 1 st.Dcache.invalidations;
  check_int "call counted as round-trip" 1 st.Dcache.backend_other;
  (* alloc_space behaves the same way *)
  ignore (dbg.Dbgi.get_bytes ~addr:page ~len:8);
  ignore (dbg.Dbgi.alloc_space 16);
  check_int "alloc also invalidates" 0 (Dcache.cached_lines dbg)

let coherence_snoop () =
  let fake = make_fake () in
  let config =
    {
      Dcache.default_config with
      Dcache.stale_policy = Dcache.Probe (fun () -> Memory.generation fake.mem);
    }
  in
  let dbg = wrap ~config fake in
  ignore (dbg.Dbgi.get_bytes ~addr:page ~len:8);
  (* a store that bypasses the cache entirely *)
  Memory.write fake.mem ~addr:page (Bytes.of_string "BYPASSED");
  check_bytes "next read sees the direct store"
    (Bytes.of_string "BYPASSED")
    (dbg.Dbgi.get_bytes ~addr:page ~len:8);
  let st = stats dbg in
  check_int "snoop invalidated" 1 st.Dcache.invalidations

let stale_without_probe () =
  (* The counterpart: with no coherence probe (a remote transport), a
     bypassing store is invisible until an explicit invalidate — this is
     the documented caveat, asserted so it fails loudly if the default
     ever changes. *)
  let fake = make_fake () in
  let dbg = wrap fake in
  Memory.write fake.mem ~addr:page (Bytes.of_string "original");
  ignore (dbg.Dbgi.get_bytes ~addr:page ~len:8);
  Memory.write fake.mem ~addr:page (Bytes.of_string "BYPASSED");
  check_bytes "probeless cache serves the stale line"
    (Bytes.of_string "original")
    (dbg.Dbgi.get_bytes ~addr:page ~len:8);
  Dcache.invalidate dbg;
  check_bytes "explicit invalidate recovers"
    (Bytes.of_string "BYPASSED")
    (dbg.Dbgi.get_bytes ~addr:page ~len:8)

let mark_stale_lazy () =
  (* [mark_stale] is the Explicit-policy stop-boundary hook: nothing
     happens until the next cached operation, then pending writes flush
     and every line drops. *)
  let fake = make_fake () in
  let dbg = wrap fake in
  Memory.write fake.mem ~addr:page (Bytes.of_string "original");
  ignore (dbg.Dbgi.get_bytes ~addr:page ~len:8);
  dbg.Dbgi.put_bytes ~addr:(page + 8) (Bytes.of_string "mine");
  Memory.write fake.mem ~addr:page (Bytes.of_string "BYPASSED");
  Dcache.mark_stale dbg;
  Dcache.mark_stale dbg (* idempotent between operations *);
  check_int "lazy: no backend traffic yet" 0 (backend_writes fake);
  check_bytes "next read refills from the backend"
    (Bytes.of_string "BYPASSED")
    (dbg.Dbgi.get_bytes ~addr:page ~len:8);
  check_bytes "our buffered write reached the backend first"
    (Bytes.of_string "mine")
    (Memory.read fake.mem ~addr:(page + 8) ~len:4);
  check_int "one invalidation" 1 (stats dbg).Dcache.invalidations

let flush_all_barrier () =
  let fake = make_fake () in
  let dbg = wrap fake in
  dbg.Dbgi.put_bytes ~addr:page (Bytes.of_string "queued");
  check_int "write still buffered" 0 (backend_writes fake);
  Dcache.flush_all ();
  check_bytes "flush_all released it"
    (Bytes.of_string "queued")
    (Memory.read fake.mem ~addr:page ~len:6)

(* --- replacement --------------------------------------------------------- *)

let lru_bound_holds () =
  let fake = make_fake () in
  let config = { Dcache.default_config with Dcache.max_lines = 2 } in
  let dbg = wrap ~config fake in
  let ls = config.Dcache.line_size in
  ignore (dbg.Dbgi.get_bytes ~addr:page ~len:4);
  ignore (dbg.Dbgi.get_bytes ~addr:(page + ls) ~len:4);
  ignore (dbg.Dbgi.get_bytes ~addr:(page + (2 * ls)) ~len:4);
  check_int "bounded at two lines" 2 (Dcache.cached_lines dbg);
  (* line 0 was the least recently used: re-reading it is a miss... *)
  ignore (dbg.Dbgi.get_bytes ~addr:page ~len:4);
  check_int "victim was the LRU line" 4 (stats dbg).Dcache.fills;
  (* ...while line 2, recently filled, is still a hit *)
  ignore (dbg.Dbgi.get_bytes ~addr:(page + (2 * ls)) ~len:4);
  check_int "recent line survived" 4 (stats dbg).Dcache.fills

let dirty_eviction_flushes () =
  let fake = make_fake () in
  let config = { Dcache.default_config with Dcache.max_lines = 1 } in
  let dbg = wrap ~config fake in
  let ls = config.Dcache.line_size in
  dbg.Dbgi.put_bytes ~addr:page (Bytes.of_string "keepme!!");
  (* filling a different line evicts the dirty one, which must flush *)
  ignore (dbg.Dbgi.get_bytes ~addr:(page + ls) ~len:4);
  check_bytes "evicted dirty bytes reached the backend"
    (Bytes.of_string "keepme!!")
    (Memory.read fake.mem ~addr:page ~len:8)

(* --- plumbing ------------------------------------------------------------ *)

let wrap_validates_config () =
  let fake = make_fake () in
  (match
     Dcache.wrap
       ~config:{ Dcache.default_config with Dcache.line_size = 48 }
       fake.dbg
   with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match
    Dcache.wrap
      ~config:{ Dcache.default_config with Dcache.max_lines = 0 }
      fake.dbg
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let identification () =
  let fake = make_fake () in
  let dbg = wrap fake in
  Alcotest.(check bool) "wrapped is cached" true (Dcache.is_cached dbg);
  Alcotest.(check bool) "raw is not" false (Dcache.is_cached fake.dbg);
  check_int "unwrapped has no lines" 0 (Dcache.cached_lines fake.dbg);
  Dcache.flush fake.dbg (* no-op, must not raise *);
  ignore (dbg.Dbgi.get_bytes ~addr:page ~len:4);
  Dcache.reset_stats dbg;
  check_int "reset clears counters" 0 (stats dbg).Dcache.fills

let suite =
  [
    case "hit and miss accounting" hit_miss_accounting;
    case "line-spanning read" line_spanning_read;
    case "partial-line fallback at a page boundary" partial_line_fallback;
    case "exact fault passthrough" fault_passthrough;
    case "zero-length accesses" zero_length_accesses;
    case "readable answers from cached lines" readable_from_cache;
    case "write coalescing and flush" write_coalescing_and_flush;
    case "overlapping writes, last wins" overlapping_writes_last_wins;
    case "disjoint writes flush in ascending order" disjoint_writes_flush_ascending;
    case "pending-byte bound forces a flush" auto_flush_on_pending_limit;
    case "call_func/alloc_space flush then invalidate" target_ops_flush_then_invalidate;
    case "coherence probe snoops direct stores" coherence_snoop;
    case "probeless cache is stale until invalidate" stale_without_probe;
    case "mark_stale invalidates lazily" mark_stale_lazy;
    case "flush_all is a write barrier" flush_all_barrier;
    case "LRU bound holds" lru_bound_holds;
    case "dirty eviction flushes first" dirty_eviction_flushes;
    case "config validation" wrap_validates_config;
    case "is_cached / flush / reset_stats plumbing" identification;
  ]
