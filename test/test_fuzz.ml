(* Robustness fuzzing: arbitrary input must either parse or raise the
   defined Lexer.Error/Parser.Error — never anything else — and whatever
   parses must evaluate without escaping the session's error handling.
   (A debugger that crashes on a typo is worse than no debugger.) *)

module Session = Duel_core.Session
module Lexer = Duel_core.Lexer
module Parser = Duel_core.Parser

let printable =
  QCheck2.Gen.(map Char.chr (int_range 32 126))

(* A mix of raw garbage and token-soup built from DUEL's own vocabulary,
   which reaches much deeper into the parser than pure noise. *)
let gen_input : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let garbage = string_size ~gen:printable (int_range 0 40) in
  let tokens =
    oneofl
      [ "x"; "hash"; "L"; "1"; "0x10"; "'c'"; "\"s\""; ".."; ","; "=>"; ":=";
        "-->"; "->"; "."; "[["; "]]"; "["; "]"; "("; ")"; "{"; "}"; ">?";
        "==?"; "#/"; "#"; "@"; ";"; "+"; "*"; "&&"; "||"; "if"; "else";
        "for"; "while"; "int"; "struct"; "sizeof"; "_"; "=="; "="; "frames" ]
  in
  let soup =
    map (String.concat " ") (list_size (int_range 0 25) tokens)
  in
  oneof [ garbage; soup ]

let session = lazy (Support.kit ()).Support.session

let prop_never_crashes =
  QCheck2.Test.make ~name:"random input never escapes defined errors"
    ~print:(fun s -> s) ~count:2000 gen_input (fun input ->
      let s = Lazy.force session in
      s.Session.max_values <- 50;
      s.Session.env.Duel_core.Env.flags.Duel_core.Env.expansion_limit <- 1000;
      (* exec catches everything a session should; anything escaping it
         (other than the resource guards) fails the property *)
      match Session.exec s input with
      | (_ : string list) -> true
      | exception Out_of_memory -> true)

(* The lexer alone, on raw bytes including non-printables. *)
let prop_lexer_total =
  QCheck2.Test.make ~name:"lexer is total (token list or Lexer.Error)"
    ~count:2000
    QCheck2.Gen.(string_size (int_range 0 60))
    (fun input ->
      match Lexer.tokenize ~abi:Duel_ctype.Abi.lp64 input with
      | (_ : (Duel_core.Token.t * int) list) -> true
      | exception Lexer.Error _ -> true)

(* The parser alone: parse or Parser.Error/Lexer.Error, nothing else. *)
let prop_parser_total =
  QCheck2.Test.make ~name:"parser is total on printable input" ~count:2000
    gen_input (fun input ->
      match Parser.parse ~abi:Duel_ctype.Abi.lp64 input with
      | (_ : Duel_core.Ast.expr) -> true
      | exception Parser.Error _ -> true
      | exception Lexer.Error _ -> true)

(* Directed: a runaway loop must come back as a reported error, never
   hang the session (the fuzzer's token soup can and does produce
   `while (1) 2`-shaped inputs). *)
let runaway_loop_bounded () =
  List.iter
    (fun engine ->
      let s = (Support.kit ()).Support.session in
      s.Session.engine <- engine;
      s.Session.env.Duel_core.Env.flags.Duel_core.Env.expansion_limit <- 1000;
      List.iter
        (fun src ->
          let lines = Session.exec s src in
          Alcotest.(check bool)
            (Printf.sprintf "%S reports the iteration limit" src)
            true
            (List.exists
               (fun l -> Support.contains_sub l "iterations")
               lines))
        (* the third body yields no values at all: the bound must count
           iterations, not produced values *)
        [ "while (1) 2;"; "for (; 1; ) 2;"; "while (1) {2;}" ])
    [ Session.Seq_engine; Session.Sm_engine ]

(* Directed: the open range [1..] is infinite by construction; a fully
   consumed one (a bare statement drains its sequence) must come back as
   the expansion-limit error in every engine, never hang.  (Found by the
   fuzzer: the token soup produces "1 .." readily.) *)
let open_range_bounded () =
  List.iter
    (fun engine ->
      let s = (Support.kit ()).Support.session in
      s.Session.engine <- engine;
      s.Session.max_values <- 5;
      s.Session.env.Duel_core.Env.flags.Duel_core.Env.expansion_limit <- 1000;
      List.iter
        (fun src ->
          let lines = Session.exec s src in
          Alcotest.(check bool)
            (Printf.sprintf "%S reports the open-range limit" src)
            true
            (List.exists
               (fun l -> Support.contains_sub l "open range exceeded")
               lines))
        [ "1.."; "0x10.."; "(1..) + 1" ])
    [ Session.Seq_engine; Session.Sm_engine; Session.Vm_engine ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_lexer_total;
    QCheck_alcotest.to_alcotest prop_parser_total;
    QCheck_alcotest.to_alcotest prop_never_crashes;
    Support.case "runaway loop is bounded (both engines)" runaway_loop_bounded;
    Support.case "open range is bounded (all engines)" open_range_bounded;
  ]
