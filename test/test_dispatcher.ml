(* The replica dispatcher: mid-stream failover, read-your-writes through
   the replication journal, hedged reads beating a slow primary, breaker
   trip/half-open/recovery — driven through hand-built replicas whose
   failure modes are flipped by refs mid-test — plus the backend spec
   language's parse/print round-trip property. *)

module Dbgi = Duel_dbgi.Dbgi
module Dispatcher = Duel_dbgi.Dispatcher
module Scenarios = Duel_scenarios.Scenarios
module Backend = Duel_backend.Backend

let case = Support.case

let transient ~addr ~len = raise (Dbgi.Target_transient { addr; len })

(* A direct backend over its own twin debuggee, with failure and latency
   switches on the live paths.  The scenario builders are deterministic,
   so every twin lays its globals out at the same addresses. *)
let replica ?(fail_get = ref false) ?(fail_put = ref false)
    ?(get_delay = ref 0.) inf =
  let raw = Duel_target.Backend.direct ~cache:false inf in
  {
    raw with
    Dbgi.get_bytes =
      (fun ~addr ~len ->
        if !get_delay > 0. then Thread.delay !get_delay;
        if !fail_get then transient ~addr ~len
        else raw.Dbgi.get_bytes ~addr ~len);
    put_bytes =
      (fun ~addr data ->
        if !fail_put then transient ~addr ~len:(Bytes.length data)
        else raw.Dbgi.put_bytes ~addr data);
  }

let addr_of dbg name =
  match dbg.Dbgi.find_variable name with
  | Some { Dbgi.v_addr; _ } -> v_addr
  | _ -> Alcotest.failf "variable %s missing" name

let get4 dbg addr = Bytes.to_string (dbg.Dbgi.get_bytes ~addr ~len:4)

(* --- failover --------------------------------------------------------- *)

let failover_mid_stream () =
  let dying = ref false in
  let d =
    Dispatcher.create
      ~labels:[ "dying"; "healthy" ]
      [
        replica ~fail_get:dying (Scenarios.big_array 64);
        replica (Scenarios.big_array 64);
      ]
  in
  let dbg = Dispatcher.dbgi d in
  let oracle =
    Duel_target.Backend.direct ~cache:false (Scenarios.big_array 64)
  in
  let base = addr_of dbg "big" in
  for i = 0 to 63 do
    if i = 20 then dying := true;
    let addr = base + (4 * i) in
    Alcotest.(check string)
      (Printf.sprintf "big[%d] matches the oracle across the death" i)
      (get4 oracle addr) (get4 dbg addr)
  done;
  let c = Dispatcher.counters d in
  Alcotest.(check bool) "reads failed over" true (c.Dispatcher.failovers > 0);
  Alcotest.(check bool) "the dying replica tripped" true (c.Dispatcher.trips >= 1);
  match Dispatcher.replica_health d with
  | (_, h) :: _ ->
      Alcotest.(check bool) "dying replica reported down" false h.Dbgi.h_ok
  | [] -> Alcotest.fail "no replica health"

(* --- read-your-writes ------------------------------------------------- *)

let read_your_writes () =
  let p_dead = ref false and s_lagging = ref true in
  let d =
    Dispatcher.create
      ~labels:[ "primary"; "lagging" ]
      [
        replica ~fail_get:p_dead (Scenarios.all ());
        replica ~fail_put:s_lagging (Scenarios.all ());
      ]
  in
  let dbg = Dispatcher.dbgi d in
  let x = addr_of dbg "x" in
  let written = "\xAA\xBB\xCC\xDD" in
  (* the write lands on the primary (owner); the lagging replica rejects
     its copy, which is journalled against it *)
  dbg.Dbgi.put_bytes ~addr:x (Bytes.of_string written);
  Alcotest.(check string) "own write visible immediately" written (get4 dbg x);
  (* primary gone, lagging still refusing writes: the dirty range must
     NOT be served stale — the read fails typed instead *)
  p_dead := true;
  let c = Dispatcher.counters d in
  (match get4 dbg x with
  | _ -> Alcotest.fail "dirty replica served a pinned range"
  | exception Dbgi.Target_transient _ -> ());
  Alcotest.(check bool)
    "the read was pinned off the dirty replica" true
    (c.Dispatcher.pinned_reads >= 1);
  (* the lagging replica heals: the journal is repaired inline and only
     then may it serve the range — read-your-writes across failover *)
  s_lagging := false;
  Alcotest.(check string)
    "own write visible from the healed replica after repair" written
    (get4 dbg x);
  Alcotest.(check bool)
    "journalled write applied late" true (c.Dispatcher.repairs >= 1);
  Alcotest.(check bool) "counted as failover" true (c.Dispatcher.failovers >= 1)

(* --- hedged reads ----------------------------------------------------- *)

let hedged_read_takes_fast_replica () =
  let slow = ref 0.05 in
  let policy =
    {
      Dispatcher.default_policy with
      Dispatcher.hedge = Dispatcher.Hedge_after 0.005;
    }
  in
  let d =
    Dispatcher.create ~policy
      ~labels:[ "slow"; "fast" ]
      [ replica ~get_delay:slow (Scenarios.all ()); replica (Scenarios.all ()) ]
  in
  let dbg = Dispatcher.dbgi d in
  let x = addr_of dbg "x" in
  let oracle =
    get4 (Duel_target.Backend.direct ~cache:false (Scenarios.all ())) x
  in
  let t0 = Unix.gettimeofday () in
  let v = get4 dbg x in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check string) "hedged read returns the oracle bytes" oracle v;
  let c = Dispatcher.counters d in
  Alcotest.(check bool) "a hedge fired" true (c.Dispatcher.hedges_fired >= 1);
  Alcotest.(check bool) "the hedge won" true (c.Dispatcher.hedge_wins >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "tail cut: %.1f ms under the 50 ms stall" (dt *. 1000.))
    true (dt < 0.04);
  (* let the abandoned worker drain fast *)
  slow := 0.

(* --- breaker recovery ------------------------------------------------- *)

let half_open_recovery () =
  let flaky = ref true in
  let policy =
    {
      Dispatcher.default_policy with
      Dispatcher.trip_after = 1;
      half_open_after = 0.;
    }
  in
  let d =
    Dispatcher.create ~policy
      ~labels:[ "flaky"; "steady" ]
      [ replica ~fail_get:flaky (Scenarios.all ()); replica (Scenarios.all ()) ]
  in
  let dbg = Dispatcher.dbgi d in
  let x = addr_of dbg "x" in
  ignore (get4 dbg x);
  let c = Dispatcher.counters d in
  Alcotest.(check int) "tripped after one fault" 1 c.Dispatcher.trips;
  flaky := false;
  (* the steady replica serves; the half-open probe rides along and
     closes the flaky replica's breaker again *)
  ignore (get4 dbg x);
  Alcotest.(check bool) "probe fired" true (c.Dispatcher.probes >= 1);
  Alcotest.(check bool)
    "breaker closed again" true (c.Dispatcher.recoveries >= 1);
  match Dispatcher.replica_health d with
  | (_, h) :: _ ->
      Alcotest.(check bool) "flaky replica healthy again" true h.Dbgi.h_ok
  | [] -> Alcotest.fail "no replica health"

(* --- spec language round-trip ----------------------------------------- *)

let gen_spec : Backend.spec QCheck2.Gen.t =
  let open QCheck2.Gen in
  let scen = oneofl [ "all"; "symtab"; "faulty"; "big:64"; "deep_list:10" ] in
  let seed = int_range 0 99 in
  let base =
    oneof
      [
        map (fun s -> Backend.Direct s) scen;
        map (fun s -> Backend.Rsp s) scen;
        map (fun s -> Backend.Serve_loop s) scen;
        map (fun s -> Backend.Dead s) scen;
        map3
          (fun h p s -> Backend.Tcp (h, p, s))
          (oneofl [ "127.0.0.1"; "replica-a"; "replica-b" ])
          (int_range 1 65535) scen;
        map2
          (fun p s -> Backend.Unix_sock (p, s))
          (oneofl [ "/tmp/duel.sock"; "/run/oduel" ])
          scen;
      ]
  in
  let rate = oneofl [ 0.01; 0.05; 0.25; 0.5 ] in
  let deco =
    oneof
      [
        return Backend.Cache;
        map2
          (fun seed profile -> Backend.Chaos { seed; profile })
          seed
          (oneofl [ "off"; "mild"; "nasty"; "mild-nocall" ]);
        map2 (fun seed profile -> Backend.Flaky { seed; profile }) seed
          (oneofl [ "off"; "mild"; "nasty" ]);
        map3
          (fun seed profile rate -> Backend.Mangle { seed; profile; rate })
          seed
          (oneofl [ "checksum"; "corrupt"; "wire" ])
          rate;
        map3
          (fun seed ms rate -> Backend.Stall { seed; ms; rate })
          seed
          (oneofl [ 0.5; 5.; 15.; 20. ])
          rate;
      ]
  in
  let atom =
    map2 (fun b ds -> Backend.Atom (b, ds)) base (list_size (int_range 0 3) deco)
  in
  let policy =
    map3
      (fun hedge (timeout, trip) (probe, alpha) ->
        {
          Backend.d_hedge = hedge;
          d_timeout_ms = timeout;
          d_trip = trip;
          d_probe_ms = probe;
          d_alpha = alpha;
        })
      (oneofl
         [
           Backend.Hedge_off;
           Backend.Hedge_ms 5.;
           Backend.Hedge_ms 0.5;
           Backend.Hedge_percentile 50;
           Backend.Hedge_percentile 99;
         ])
      (pair (oneofl [ 100.; 500.; 2000. ]) (int_range 1 5))
      (pair (oneofl [ 0.; 10.; 50. ]) (oneofl [ 0.1; 0.2; 0.5 ]))
  in
  oneof
    [
      atom;
      map2
        (fun kids pol -> Backend.Dispatch (kids, pol))
        (list_size (int_range 1 3) atom)
        policy;
    ]

let prop_roundtrip =
  QCheck2.Test.make ~name:"spec parse . print . parse is stable" ~count:500
    ~print:Backend.print gen_spec (fun spec ->
      let printed = Backend.print spec in
      match Backend.parse printed with
      | Error m -> QCheck2.Test.fail_reportf "%s does not re-parse: %s" printed m
      | Ok spec' ->
          spec' = spec
          && Backend.print spec' = printed (* printing is a fixpoint *))

let suite =
  [
    case "reads fail over when a replica dies mid-stream" failover_mid_stream;
    case "read-your-writes survives failover via the journal" read_your_writes;
    case "a hedged read takes the fast replica" hedged_read_takes_fast_replica;
    case "a tripped replica recovers through the half-open probe"
      half_open_recovery;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
