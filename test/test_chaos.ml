(* The chaos layer: deterministic fault injection across every boundary.

   The contract under test, everywhere: a chaotic stack either converges
   to the oracle answer or surfaces a typed, retriable error — never a
   hang, never a crash, never a silently wrong value.  Every failure
   message carries the seed, so a failing schedule replays exactly. *)

module Dbgi = Duel_dbgi.Dbgi
module Dcache = Duel_dbgi.Dcache
module Backend = Duel_target.Backend
module Scenarios = Duel_scenarios.Scenarios
module Session = Duel_core.Session
module Chaos = Duel_chaos.Chaos
module Mangler = Duel_chaos.Mangler
module Prng = Duel_chaos.Prng
module Packet = Duel_rsp.Packet
module Server = Duel_serve.Server
module Client = Duel_serve.Client

let case = Support.case
let nosleep _ = ()

(* --- the PRNG ------------------------------------------------------------ *)

let prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same seed, same stream" (Prng.bits64 a)
      (Prng.bits64 b)
  done;
  let c = Prng.create 43 in
  let differs = ref false in
  for _ = 1 to 64 do
    if Prng.bits64 a <> Prng.bits64 c then differs := true
  done;
  Alcotest.(check bool) "different seed, different stream" true !differs;
  let d = Prng.create 42 in
  ignore (Prng.bits64 d);
  let e = Prng.copy d in
  Alcotest.(check int64) "copy continues the stream" (Prng.bits64 d)
    (Prng.bits64 e)

let prng_bounds () =
  let p = Prng.create 7 in
  for _ = 1 to 10_000 do
    let n = 1 + Prng.int p 100 in
    let v = Prng.int p n in
    if v < 0 || v >= n then Alcotest.failf "int %d out of [0,%d)" v n;
    let f = Prng.float p 3.5 in
    if f < 0. || f >= 3.5 then Alcotest.failf "float %f out of [0,3.5)" f
  done;
  Alcotest.(check bool) "chance 0 never fires" false (Prng.chance p 0.);
  Alcotest.(check bool) "chance 1 always fires" true (Prng.chance p 1.)

let backoff_bounded () =
  let pol = Chaos.default_retry in
  let pr = Prng.create 5 in
  for attempt = 1 to 50 do
    let d = Chaos.backoff pol pr ~attempt in
    if d < 0. || d > pol.Chaos.max_backoff then
      Alcotest.failf "backoff %f for attempt %d escapes [0, max]" d attempt
  done

(* --- the byte mangler ---------------------------------------------------- *)

let feed_all d s =
  Packet.Deframer.feed d (Bytes.of_string s) 0 (String.length s)

let mangler_identity =
  QCheck2.Test.make ~name:"rate-0 mangler is the identity" ~count:200
    QCheck2.Gen.(pair (int_bound 0xffff) (string_size (int_range 0 300)))
    (fun (seed, s) ->
      let m = Mangler.create ~seed Mangler.off in
      String.concat "" (Mangler.mangle m s) = s)

let mangler_deterministic =
  QCheck2.Test.make ~name:"mangler replays exactly from its seed" ~count:100
    QCheck2.Gen.(
      pair (int_bound 0xffff)
        (list_size (int_range 1 8) (string_size (int_range 0 120))))
    (fun (seed, chunks) ->
      let m1 = Mangler.create ~seed (Mangler.wire ~rate:0.05)
      and m2 = Mangler.create ~seed (Mangler.wire ~rate:0.05) in
      List.for_all (fun s -> Mangler.mangle m1 s = Mangler.mangle m2 s) chunks)

(* The load-bearing property: whatever the mangler does to a framed
   packet, the deframer never reports a [Frame] whose payload differs
   from the original — damage is always detected (Bad) or the frame is
   delivered intact.  Payloads stay under the size where enough guarded
   single-byte steps could accumulate to a multiple of 256 (that needs a
   frame past ~2 KiB at guard 64).  For the lossless profiles every
   delivery also produces exactly one event: frames are never silently
   swallowed. *)
let mangler_detectable name profile lossless =
  QCheck2.Test.make
    ~name:(Printf.sprintf "%s damage is always detectable" name)
    ~count:60
    QCheck2.Gen.(pair (int_bound 0xffff) (string_size (int_range 0 256)))
    (fun (seed, payload) ->
      let framed = Packet.encode payload in
      let m = Mangler.create ~seed profile in
      let d = Packet.Deframer.create () in
      let reps = 30 in
      let events =
        List.concat
          (List.init reps (fun _ ->
               List.concat_map (feed_all d) (Mangler.mangle m framed)))
      in
      let faithful =
        List.for_all
          (function Packet.Deframer.Frame p -> p = payload | _ -> true)
          events
      in
      faithful && ((not lossless) || List.length events = reps))

let mangler_props =
  [
    mangler_identity;
    mangler_deterministic;
    mangler_detectable "corrupting" (Mangler.corrupting ~rate:0.03) true;
    mangler_detectable "checksum-only" (Mangler.checksum_only ~rate:0.4) true;
    mangler_detectable "hostile wire" (Mangler.wire ~rate:0.02) false;
  ]

let mangled_exchange_converges () =
  (* The retransmit discipline over the in-process stub: under 1%
     corruption every request converges to the clean-wire answer. *)
  let inf = Scenarios.all () in
  let server = Duel_rsp.Server.create inf in
  let clean = Duel_rsp.Server.handle server in
  let m = Mangler.create ~seed:21 (Mangler.corrupting ~rate:0.01) in
  let mangled = Chaos.mangled_exchange m clean in
  let req = Packet.encode "qDuelFrames" in
  let want = Packet.decode (clean req) in
  for i = 1 to 300 do
    let got = Packet.decode (mangled req) in
    if got <> want then
      Alcotest.failf "exchange %d: %S instead of %S (seed 21)" i got want
  done;
  let st = Mangler.stats m in
  if st.Mangler.corrupted = 0 then
    Alcotest.fail "the mangler never corrupted anything — rate miswired?"

(* --- the DBGI fault proxy and the retry layer ---------------------------- *)

let addr_of dbg name =
  match dbg.Dbgi.find_variable name with
  | Some { Dbgi.v_addr; _ } -> v_addr
  | None -> Alcotest.failf "global %s missing" name

let off_plan_is_passthrough () =
  let inf = Scenarios.all () in
  let raw = Backend.direct ~cache:false inf in
  let plan = Chaos.plan ~seed:9 Chaos.off in
  let dbg =
    Chaos.wrap_dbgi ~sleep:(fun _ -> Alcotest.fail "off plan slept") plan raw
  in
  let x = addr_of raw "x" in
  for len = 0 to 64 do
    Alcotest.(check string)
      (Printf.sprintf "%d-byte read identical" len)
      (Bytes.to_string (raw.Dbgi.get_bytes ~addr:x ~len))
      (Bytes.to_string (dbg.Dbgi.get_bytes ~addr:x ~len))
  done;
  dbg.Dbgi.put_bytes ~addr:x (Bytes.of_string "\x2a\x00\x00\x00");
  Alcotest.(check int64) "write landed" 42L
    (Dbgi.read_scalar raw ~addr:x ~size:4 ~signed:true);
  let st = Chaos.stats plan in
  Alcotest.(check int) "no faults injected" 0
    (st.Chaos.read_faults + st.Chaos.write_faults + st.Chaos.torn_writes
   + st.Chaos.call_faults + st.Chaos.delays)

let resilient_absorbs_nasty () =
  List.iter
    (fun seed ->
      let inf = Scenarios.all () in
      let raw = Backend.direct ~cache:false inf in
      let plan = Chaos.plan ~seed Chaos.nasty in
      let rs = Chaos.retry_stats_zero () in
      let dbg =
        Chaos.resilient ~stats:rs ~sleep:nosleep ~seed
          (Chaos.wrap_dbgi ~sleep:nosleep plan raw)
      in
      let x = addr_of raw "x" in
      for i = 0 to 199 do
        let v = Dbgi.read_scalar dbg ~addr:(x + 12) ~size:4 ~signed:true in
        if v <> 7L then Alcotest.failf "seed %d read %d: x[3] = %Ld" seed i v
      done;
      for i = 0 to 99 do
        Dbgi.write_scalar dbg ~addr:x ~size:4 (Int64.of_int i);
        let v = Dbgi.read_scalar dbg ~addr:x ~size:4 ~signed:true in
        if v <> Int64.of_int i then
          Alcotest.failf "seed %d write %d read back %Ld" seed i v
      done;
      let st = Chaos.stats plan in
      if st.Chaos.read_faults = 0 || st.Chaos.write_faults = 0 then
        Alcotest.failf "seed %d: nasty injected nothing" seed;
      if rs.Chaos.r_retries = 0 then
        Alcotest.failf "seed %d: nothing was retried" seed;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: nothing gave up" seed)
        0 rs.Chaos.r_gave_up)
    [ 1; 2; 3; 0xdead ]

(* --- session-level soak: oracle answer or typed error -------------------- *)

(* Every query is either call-free (so a command-level re-execution after
   a typed transient is idempotent) or a pure read that may call — never
   a mutation combined with a call, which a re-execution could double. *)
let corpus =
  [
    "x[3]";
    "x[0..9]";
    "w[0..9]";
    "head-->next->value";
    "root-->(left,right)->key";
    "hash[0]-->next->scope";
    "v[1] = 42";
    "v[1]";
    "mat[1][2]";
    "uv.i";
    "sizeof(struct symbol)";
    "strlen(s)";
    "abs(-7)";
  ]

(* One oracle transcript, computed once on a clean direct stack.  The
   scenario builders are deterministic, so every chaotic arm's fresh
   debuggee starts bit-identical to the oracle's. *)
let oracle =
  lazy
    (let s = Session.create (Backend.direct (Scenarios.all ())) in
     List.map
       (fun q ->
         let lines = Session.exec s q in
         if
           lines = []
           || List.exists (fun l -> Support.contains_sub l "error") lines
         then
           Alcotest.failf "broken corpus query %S: %s" q
             (String.concat " | " lines);
         (q, lines))
       corpus)

let is_transient out =
  List.exists (fun l -> Support.contains_sub l "Transient target fault") out

let soak_one ~label ~seed dbg =
  let s = Session.create dbg in
  List.iter
    (fun (q, want) ->
      let rec settle tries =
        if tries > 300 then
          Alcotest.failf "%s: %S never converged (replay with seed %d)" label
            q seed;
        let out = Session.exec s q in
        if out = want then ()
        else if is_transient out then settle (tries + 1)
        else
          Alcotest.failf
            "%s: %S answered %S, oracle says %S (replay with seed %d)" label q
            (String.concat "\\n" out)
            (String.concat "\\n" want)
            seed
      in
      settle 0)
    (Lazy.force oracle)

let soak_rig_direct () =
  List.iter
    (fun seed ->
      let rig =
        Chaos.rig_direct ~seed ~sleep:nosleep Chaos.nasty (Scenarios.all ())
      in
      soak_one ~label:(Printf.sprintf "rig-direct seed %d" seed) ~seed
        rig.Chaos.dbg;
      let st = Chaos.stats rig.Chaos.plan_ in
      if st.Chaos.read_faults + st.Chaos.write_faults = 0 then
        Alcotest.failf "seed %d: the nasty plan injected nothing" seed)
    [ 101; 102; 103; 104 ]

let soak_rig_loopback () =
  List.iter
    (fun seed ->
      let rig =
        Chaos.rig_loopback ~seed ~sleep:nosleep Chaos.mild (Scenarios.all ())
      in
      soak_one ~label:(Printf.sprintf "rig-loopback seed %d" seed) ~seed
        rig.Chaos.dbg;
      match rig.Chaos.wire with
      | None -> Alcotest.fail "loopback rig lost its wire stats"
      | Some w ->
          if w.Mangler.bytes = 0 then
            Alcotest.failf "seed %d: no bytes crossed the mangled wire" seed)
    [ 201; 202; 203 ]

(* The cache without the retry layer: a transient mid-command surfaces as
   the typed session error and marks the touched lines stale, so the
   rerun converges — degradation, not corruption. *)
let soak_dcache_degrades () =
  let injected = ref 0 in
  List.iter
    (fun seed ->
      let inf = Scenarios.all () in
      let plan = Chaos.plan ~seed Chaos.nasty in
      let dbg =
        Dcache.wrap
          (Chaos.wrap_dbgi ~sleep:nosleep plan (Backend.direct ~cache:false inf))
      in
      soak_one ~label:(Printf.sprintf "dcache-no-retry seed %d" seed) ~seed dbg;
      let st = Chaos.stats plan in
      injected :=
        !injected + st.Chaos.read_faults + st.Chaos.write_faults
        + st.Chaos.torn_writes)
    [ 301; 302; 303; 304 ];
  if !injected = 0 then
    Alcotest.fail "four nasty seeds injected nothing — plan miswired?"

(* --- the serve layer under server-side fault injection ------------------- *)

(* A seeded hook with the same burst discipline as the DBGI plans: at
   most [max_burst] consecutive injections per fault point, so the
   client's bounded retries always win and the test can assert
   convergence rather than hope for it. *)
let seeded_hook ?(max_burst = 2) seed =
  let prng = Prng.create seed in
  let burst = Hashtbl.create 8 in
  fun point ->
    let key, rate =
      match point with
      | Server.Accept -> (0, 0.) (* injected socketpairs: keep the conn *)
      | Server.Reply_drop -> (1, 0.15)
      | Server.Reply_truncate -> (2, 0.15)
      | Server.Stall_read -> (3, 0.05)
      | Server.Stall_write -> (4, 0.05)
    in
    let b = try Hashtbl.find burst key with Not_found -> 0 in
    if b < max_burst && Prng.chance prng rate then begin
      Hashtbl.replace burst key (b + 1);
      true
    end
    else begin
      Hashtbl.replace burst key 0;
      false
    end

let chaotic_socket_stack ?(retry = Support.quick_retry) hook inf =
  let config = { Server.default_config with Server.fault_hook = Some hook } in
  let srv = Server.create ~config inf in
  let server_end, client_end = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Server.inject srv server_end;
  let cl =
    Client.of_fd
      ~pump:(fun () -> ignore (Server.step srv 0.005))
      ~retry client_end
  in
  (srv, cl)

let serve_eval_converges_under_chaos () =
  let hit = ref 0 in
  List.iter
    (fun seed ->
      let inf = Scenarios.all () in
      let srv, cl = chaotic_socket_stack (seeded_hook seed) inf in
      List.iter
        (fun (q, want) ->
          let got = Client.eval cl q in
          if got <> want then
            Alcotest.failf "serve seed %d: %S answered %S, oracle %S" seed q
              (String.concat "\\n" got)
              (String.concat "\\n" want))
        (Lazy.force oracle);
      hit := !hit + (Server.stats srv).Server.chaos;
      Client.close cl)
    [ 401; 402; 403 ];
  if !hit = 0 then
    Alcotest.fail "three seeds of server chaos never fired — hook miswired?"

(* The at-most-once guarantee, pinned down: drop exactly the first
   reply; the client's resend must be answered by replay, not by
   re-executing a mutating eval. *)
let serve_eval_at_most_once () =
  let inf = Scenarios.all () in
  let dropped = ref false in
  let hook = function
    | Server.Reply_drop when not !dropped ->
        dropped := true;
        true
    | _ -> false
  in
  let srv, cl = chaotic_socket_stack hook inf in
  let oracle_s = Session.create (Backend.direct (Scenarios.all ())) in
  let want_assign = Session.exec oracle_s "v[2] = v[2] + 1" in
  let want_read = Session.exec oracle_s "v[2]" in
  Alcotest.(check (list string))
    "mutating eval ran exactly once" want_assign
    (Client.eval cl "v[2] = v[2] + 1");
  Alcotest.(check (list string))
    "the increment landed exactly once" want_read (Client.eval cl "v[2]");
  let st = Server.stats srv in
  Alcotest.(check int) "one injected fault" 1 st.Server.chaos;
  Alcotest.(check int) "two evaluations executed" 2 st.Server.evals;
  Alcotest.(check bool)
    "the resend was answered by replay" true (st.Server.eval_dups >= 1);
  Alcotest.(check bool)
    "the client resent after a timeout" true
    ((Client.counters cl).Client.resends >= 1);
  Client.close cl

let serve_eval_deadline_no_hang () =
  (* Every reply swallowed: the eval must fail typed, quickly — never
     hang waiting for a reply that is not coming. *)
  let inf = Scenarios.all () in
  let hook = function Server.Reply_drop -> true | _ -> false in
  let retry =
    { Support.quick_retry with Client.attempts = 3; reply_timeout = 0.05 }
  in
  let _srv, cl = chaotic_socket_stack ~retry hook inf in
  let t0 = Unix.gettimeofday () in
  (match Client.eval cl "x[3]" with
  | lines ->
      Alcotest.failf "eval answered %S through a dead reply path"
        (String.concat "\\n" lines)
  | exception Client.Error f ->
      Alcotest.(check bool)
        "deadline is a transport-class failure" true
        (Client.is_transport f));
  let dt = Unix.gettimeofday () -. t0 in
  if dt > 5. then Alcotest.failf "gave up only after %.1f s" dt;
  Client.close cl

let suite =
  [
    case "prng is deterministic and copyable" prng_deterministic;
    case "prng draws stay in bounds" prng_bounds;
    case "backoff stays within [0, max_backoff]" backoff_bounded;
  ]
  @ List.map QCheck_alcotest.to_alcotest mangler_props
  @ [
      case "mangled exchange converges at 1% corruption"
        mangled_exchange_converges;
      case "a fault-rate-0 plan is bit-identical pass-through"
        off_plan_is_passthrough;
      case "retry layer absorbs nasty transients" resilient_absorbs_nasty;
      case "soak: direct rig reaches the oracle on every seed"
        soak_rig_direct;
      case "soak: mangled RSP loopback rig reaches the oracle"
        soak_rig_loopback;
      case "soak: cache without retry degrades to typed errors"
        soak_dcache_degrades;
      case "serve evals converge under server fault injection"
        serve_eval_converges_under_chaos;
      case "a dropped eval reply is replayed, not re-executed"
        serve_eval_at_most_once;
      case "a dead reply path fails typed, never hangs"
        serve_eval_deadline_no_hang;
    ]
